
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/annealing.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/annealing.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/annealing.cpp.o.d"
  "/root/repo/src/algo/ldm.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ldm.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ldm.cpp.o.d"
  "/root/repo/src/algo/list_scheduling.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/list_scheduling.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/list_scheduling.cpp.o.d"
  "/root/repo/src/algo/local_search.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/local_search.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/local_search.cpp.o.d"
  "/root/repo/src/algo/lpt.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/lpt.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/lpt.cpp.o.d"
  "/root/repo/src/algo/multifit.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/multifit.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/multifit.cpp.o.d"
  "/root/repo/src/algo/ptas/bisection.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/bisection.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/bisection.cpp.o.d"
  "/root/repo/src/algo/ptas/config_enum.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/config_enum.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/config_enum.cpp.o.d"
  "/root/repo/src/algo/ptas/dp_parallel.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_parallel.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_parallel.cpp.o.d"
  "/root/repo/src/algo/ptas/dp_sequential.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_sequential.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_sequential.cpp.o.d"
  "/root/repo/src/algo/ptas/dp_table.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_table.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/dp_table.cpp.o.d"
  "/root/repo/src/algo/ptas/multisection.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/multisection.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/multisection.cpp.o.d"
  "/root/repo/src/algo/ptas/ptas.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/ptas.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/ptas.cpp.o.d"
  "/root/repo/src/algo/ptas/reconstruct.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/reconstruct.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/reconstruct.cpp.o.d"
  "/root/repo/src/algo/ptas/rounding.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/rounding.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/rounding.cpp.o.d"
  "/root/repo/src/algo/ptas/state_space.cpp" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/state_space.cpp.o" "gcc" "src/algo/CMakeFiles/pcmax_algo.dir/ptas/state_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pcmax_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pcmax_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmax_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
