file(REMOVE_RECURSE
  "libpcmax_algo.a"
)
