# Empty compiler generated dependencies file for parallel_barrier_test.
# This may be replaced when dependencies are built.
