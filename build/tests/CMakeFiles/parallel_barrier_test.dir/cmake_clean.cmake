file(REMOVE_RECURSE
  "CMakeFiles/parallel_barrier_test.dir/parallel_barrier_test.cpp.o"
  "CMakeFiles/parallel_barrier_test.dir/parallel_barrier_test.cpp.o.d"
  "parallel_barrier_test"
  "parallel_barrier_test.pdb"
  "parallel_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
