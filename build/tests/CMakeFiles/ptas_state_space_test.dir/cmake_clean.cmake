file(REMOVE_RECURSE
  "CMakeFiles/ptas_state_space_test.dir/ptas_state_space_test.cpp.o"
  "CMakeFiles/ptas_state_space_test.dir/ptas_state_space_test.cpp.o.d"
  "ptas_state_space_test"
  "ptas_state_space_test.pdb"
  "ptas_state_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_state_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
