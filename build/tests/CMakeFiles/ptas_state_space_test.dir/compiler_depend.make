# Empty compiler generated dependencies file for ptas_state_space_test.
# This may be replaced when dependencies are built.
