file(REMOVE_RECURSE
  "CMakeFiles/harness_calibration_test.dir/harness_calibration_test.cpp.o"
  "CMakeFiles/harness_calibration_test.dir/harness_calibration_test.cpp.o.d"
  "harness_calibration_test"
  "harness_calibration_test.pdb"
  "harness_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
