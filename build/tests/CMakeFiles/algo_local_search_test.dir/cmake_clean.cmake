file(REMOVE_RECURSE
  "CMakeFiles/algo_local_search_test.dir/algo_local_search_test.cpp.o"
  "CMakeFiles/algo_local_search_test.dir/algo_local_search_test.cpp.o.d"
  "algo_local_search_test"
  "algo_local_search_test.pdb"
  "algo_local_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_local_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
