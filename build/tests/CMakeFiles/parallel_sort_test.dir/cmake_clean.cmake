file(REMOVE_RECURSE
  "CMakeFiles/parallel_sort_test.dir/parallel_sort_test.cpp.o"
  "CMakeFiles/parallel_sort_test.dir/parallel_sort_test.cpp.o.d"
  "parallel_sort_test"
  "parallel_sort_test.pdb"
  "parallel_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
