file(REMOVE_RECURSE
  "CMakeFiles/exact_lower_bounds_test.dir/exact_lower_bounds_test.cpp.o"
  "CMakeFiles/exact_lower_bounds_test.dir/exact_lower_bounds_test.cpp.o.d"
  "exact_lower_bounds_test"
  "exact_lower_bounds_test.pdb"
  "exact_lower_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_lower_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
