# Empty dependencies file for exact_lower_bounds_test.
# This may be replaced when dependencies are built.
