# Empty dependencies file for mip_lp_random_test.
# This may be replaced when dependencies are built.
