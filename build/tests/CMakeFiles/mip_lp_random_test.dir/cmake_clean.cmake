file(REMOVE_RECURSE
  "CMakeFiles/mip_lp_random_test.dir/mip_lp_random_test.cpp.o"
  "CMakeFiles/mip_lp_random_test.dir/mip_lp_random_test.cpp.o.d"
  "mip_lp_random_test"
  "mip_lp_random_test.pdb"
  "mip_lp_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_lp_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
