# Empty dependencies file for util_table_printer_test.
# This may be replaced when dependencies are built.
