file(REMOVE_RECURSE
  "CMakeFiles/exact_subset_dp_test.dir/exact_subset_dp_test.cpp.o"
  "CMakeFiles/exact_subset_dp_test.dir/exact_subset_dp_test.cpp.o.d"
  "exact_subset_dp_test"
  "exact_subset_dp_test.pdb"
  "exact_subset_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_subset_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
