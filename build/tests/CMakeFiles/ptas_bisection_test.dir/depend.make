# Empty dependencies file for ptas_bisection_test.
# This may be replaced when dependencies are built.
