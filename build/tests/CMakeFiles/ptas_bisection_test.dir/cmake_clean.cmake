file(REMOVE_RECURSE
  "CMakeFiles/ptas_bisection_test.dir/ptas_bisection_test.cpp.o"
  "CMakeFiles/ptas_bisection_test.dir/ptas_bisection_test.cpp.o.d"
  "ptas_bisection_test"
  "ptas_bisection_test.pdb"
  "ptas_bisection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_bisection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
