# Empty dependencies file for ptas_solver_test.
# This may be replaced when dependencies are built.
