file(REMOVE_RECURSE
  "CMakeFiles/ptas_solver_test.dir/ptas_solver_test.cpp.o"
  "CMakeFiles/ptas_solver_test.dir/ptas_solver_test.cpp.o.d"
  "ptas_solver_test"
  "ptas_solver_test.pdb"
  "ptas_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
