file(REMOVE_RECURSE
  "CMakeFiles/mip_ip_test.dir/mip_ip_test.cpp.o"
  "CMakeFiles/mip_ip_test.dir/mip_ip_test.cpp.o.d"
  "mip_ip_test"
  "mip_ip_test.pdb"
  "mip_ip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
