# Empty dependencies file for mip_ip_test.
# This may be replaced when dependencies are built.
