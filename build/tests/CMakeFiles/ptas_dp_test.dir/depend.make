# Empty dependencies file for ptas_dp_test.
# This may be replaced when dependencies are built.
