# Empty dependencies file for core_gantt_test.
# This may be replaced when dependencies are built.
