file(REMOVE_RECURSE
  "CMakeFiles/core_gantt_test.dir/core_gantt_test.cpp.o"
  "CMakeFiles/core_gantt_test.dir/core_gantt_test.cpp.o.d"
  "core_gantt_test"
  "core_gantt_test.pdb"
  "core_gantt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
