# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ptas_engine_matrix_test.
