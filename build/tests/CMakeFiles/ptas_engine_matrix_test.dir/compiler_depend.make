# Empty compiler generated dependencies file for ptas_engine_matrix_test.
# This may be replaced when dependencies are built.
