file(REMOVE_RECURSE
  "CMakeFiles/ptas_engine_matrix_test.dir/ptas_engine_matrix_test.cpp.o"
  "CMakeFiles/ptas_engine_matrix_test.dir/ptas_engine_matrix_test.cpp.o.d"
  "ptas_engine_matrix_test"
  "ptas_engine_matrix_test.pdb"
  "ptas_engine_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_engine_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
