file(REMOVE_RECURSE
  "CMakeFiles/ptas_rounding_test.dir/ptas_rounding_test.cpp.o"
  "CMakeFiles/ptas_rounding_test.dir/ptas_rounding_test.cpp.o.d"
  "ptas_rounding_test"
  "ptas_rounding_test.pdb"
  "ptas_rounding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
