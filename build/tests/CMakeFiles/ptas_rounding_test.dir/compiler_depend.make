# Empty compiler generated dependencies file for ptas_rounding_test.
# This may be replaced when dependencies are built.
