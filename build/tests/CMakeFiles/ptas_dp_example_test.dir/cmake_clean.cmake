file(REMOVE_RECURSE
  "CMakeFiles/ptas_dp_example_test.dir/ptas_dp_example_test.cpp.o"
  "CMakeFiles/ptas_dp_example_test.dir/ptas_dp_example_test.cpp.o.d"
  "ptas_dp_example_test"
  "ptas_dp_example_test.pdb"
  "ptas_dp_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_dp_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
