# Empty dependencies file for ptas_dp_example_test.
# This may be replaced when dependencies are built.
