file(REMOVE_RECURSE
  "CMakeFiles/core_instance_gen_test.dir/core_instance_gen_test.cpp.o"
  "CMakeFiles/core_instance_gen_test.dir/core_instance_gen_test.cpp.o.d"
  "core_instance_gen_test"
  "core_instance_gen_test.pdb"
  "core_instance_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_instance_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
