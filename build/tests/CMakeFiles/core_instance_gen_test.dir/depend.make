# Empty dependencies file for core_instance_gen_test.
# This may be replaced when dependencies are built.
