# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ptas_dp_crosscheck_test.
