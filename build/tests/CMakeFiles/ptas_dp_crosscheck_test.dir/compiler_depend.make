# Empty compiler generated dependencies file for ptas_dp_crosscheck_test.
# This may be replaced when dependencies are built.
