# Empty dependencies file for algo_baselines_test.
# This may be replaced when dependencies are built.
