file(REMOVE_RECURSE
  "CMakeFiles/algo_baselines_test.dir/algo_baselines_test.cpp.o"
  "CMakeFiles/algo_baselines_test.dir/algo_baselines_test.cpp.o.d"
  "algo_baselines_test"
  "algo_baselines_test.pdb"
  "algo_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
