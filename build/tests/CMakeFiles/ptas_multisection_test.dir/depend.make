# Empty dependencies file for ptas_multisection_test.
# This may be replaced when dependencies are built.
