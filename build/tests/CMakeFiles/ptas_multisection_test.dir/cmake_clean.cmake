file(REMOVE_RECURSE
  "CMakeFiles/ptas_multisection_test.dir/ptas_multisection_test.cpp.o"
  "CMakeFiles/ptas_multisection_test.dir/ptas_multisection_test.cpp.o.d"
  "ptas_multisection_test"
  "ptas_multisection_test.pdb"
  "ptas_multisection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_multisection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
