# Empty compiler generated dependencies file for ptas_config_enum_test.
# This may be replaced when dependencies are built.
