file(REMOVE_RECURSE
  "CMakeFiles/ptas_config_enum_test.dir/ptas_config_enum_test.cpp.o"
  "CMakeFiles/ptas_config_enum_test.dir/ptas_config_enum_test.cpp.o.d"
  "ptas_config_enum_test"
  "ptas_config_enum_test.pdb"
  "ptas_config_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptas_config_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
