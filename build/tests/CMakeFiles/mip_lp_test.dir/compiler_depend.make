# Empty compiler generated dependencies file for mip_lp_test.
# This may be replaced when dependencies are built.
