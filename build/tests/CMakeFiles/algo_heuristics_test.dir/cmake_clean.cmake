file(REMOVE_RECURSE
  "CMakeFiles/algo_heuristics_test.dir/algo_heuristics_test.cpp.o"
  "CMakeFiles/algo_heuristics_test.dir/algo_heuristics_test.cpp.o.d"
  "algo_heuristics_test"
  "algo_heuristics_test.pdb"
  "algo_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
