add_test([=[SimplexRandomised.MatchesVertexEnumerationOnTwoVariablePrograms]=]  /root/repo/build/tests/mip_lp_random_test [==[--gtest_filter=SimplexRandomised.MatchesVertexEnumerationOnTwoVariablePrograms]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SimplexRandomised.MatchesVertexEnumerationOnTwoVariablePrograms]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  mip_lp_random_test_TESTS SimplexRandomised.MatchesVertexEnumerationOnTwoVariablePrograms)
