file(REMOVE_RECURSE
  "CMakeFiles/render_farm.dir/render_farm.cpp.o"
  "CMakeFiles/render_farm.dir/render_farm.cpp.o.d"
  "render_farm"
  "render_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
