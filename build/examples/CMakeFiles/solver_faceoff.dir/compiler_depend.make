# Empty compiler generated dependencies file for solver_faceoff.
# This may be replaced when dependencies are built.
