file(REMOVE_RECURSE
  "CMakeFiles/solver_faceoff.dir/solver_faceoff.cpp.o"
  "CMakeFiles/solver_faceoff.dir/solver_faceoff.cpp.o.d"
  "solver_faceoff"
  "solver_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
