# Empty compiler generated dependencies file for whatif_execution.
# This may be replaced when dependencies are built.
