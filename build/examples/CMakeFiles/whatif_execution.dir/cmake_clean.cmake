file(REMOVE_RECURSE
  "CMakeFiles/whatif_execution.dir/whatif_execution.cpp.o"
  "CMakeFiles/whatif_execution.dir/whatif_execution.cpp.o.d"
  "whatif_execution"
  "whatif_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
