// Tests of the graceful-degradation driver: whatever trips — budgets,
// deadlines, external cancels, injected faults — solve() must return a
// complete valid schedule with honest provenance, and never throw for
// resource reasons.
#include "core/resilient_solver.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "algo/lpt.hpp"
#include "core/instance_gen.hpp"
#include "core/solve_context.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

Instance small_instance() {
  return generate_instance(InstanceFamily::kUniform1To100, 5, 30, 3, 0);
}

TEST(ResilientSolver, HealthySolveUsesThePtas) {
  const Instance instance = small_instance();
  ResilientOptions options;
  const SolverResult result = ResilientSolver(options).solve(instance);
  result.schedule.validate(instance);
  ASSERT_TRUE(result.notes.count("algorithm_used"));
  EXPECT_NE(result.notes.at("algorithm_used").find("PTAS"), std::string::npos);
  EXPECT_EQ(result.notes.at("degradation_reason"), "none");
  EXPECT_GE(result.stats.count("stage_ptas_seconds"), 1u);
}

TEST(ResilientSolver, ResourceLimitDegradesToAValidFallback) {
  const Instance instance = small_instance();
  ResilientOptions options;
  options.ptas.limits.max_table_entries = 4;  // PTAS trips at some probe
  const SolverResult result = ResilientSolver(options).solve(instance);
  result.schedule.validate(instance);
  const std::string& algorithm = result.notes.at("algorithm_used");
  EXPECT_TRUE(algorithm.find("MULTIFIT") == 0 || algorithm.find("LPT") == 0)
      << algorithm;
  EXPECT_EQ(result.notes.at("degradation_reason").find("resource-limit"), 0u)
      << result.notes.at("degradation_reason");
  EXPECT_FALSE(result.proven_optimal);
  // Guarantee: LPT-or-better.
  const SolverResult lpt = LptSolver().solve(instance);
  EXPECT_LE(result.makespan, lpt.makespan);
}

TEST(ResilientSolver, ExpiredDeadlineStillReturnsAValidSchedule) {
  const Instance instance = small_instance();
  // The context carries no own deadline, but the external token's deadline
  // is already expired: the PTAS must abort promptly and the fallback must
  // still produce a schedule.
  const SolveContext context = SolveContext::with_token(
      CancellationToken::with_deadline(Deadline::after_ms(0)));
  const SolverResult result =
      ResilientSolver(ResilientOptions{}).solve(instance, context);
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "deadline");
  const SolverResult lpt = LptSolver().solve(instance);
  EXPECT_LE(result.makespan, lpt.makespan);
}

TEST(ResilientSolver, TimeLimitOptionLayersADeadline) {
  const Instance instance = small_instance();
  ResilientOptions options;
  options.time_limit_ms = 3'600'000;  // an hour: never trips
  const SolverResult result = ResilientSolver(options).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "none");
}

TEST(ResilientSolver, ExternalCancelBeforeSolveFallsBack) {
  const Instance instance = small_instance();
  CancellationToken token = CancellationToken::make();
  token.request_cancel();
  const SolverResult result = ResilientSolver(ResilientOptions{})
                                  .solve(instance, SolveContext::with_token(token));
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "cancelled");
  const SolverResult lpt = LptSolver().solve(instance);
  EXPECT_LE(result.makespan, lpt.makespan);
}

TEST(ResilientSolver, FaultMidDpDegradesWithCorrectReason) {
  // The acceptance scenario: a FaultInjector cancel mid-DP must yield a
  // valid LPT-or-better schedule and degradation_reason == "cancelled".
  const Instance instance = small_instance();
  CancellationToken token = CancellationToken::make();
  FaultInjector injector("dp.level", /*fire_at=*/2,
                         FaultInjector::Action::kCancel, token);
  FaultScope scope(injector);
  ThreadPoolExecutor executor(2);
  ResilientOptions options;
  options.ptas.engine = DpEngine::kParallelBucketed;
  options.ptas.executor = &executor;
  const SolverResult result =
      ResilientSolver(options).solve(instance, SolveContext::with_token(token));
  EXPECT_TRUE(injector.fired());
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "cancelled");
  EXPECT_GE(result.stats.count("stage_fallback_seconds"), 1u);
  EXPECT_GE(result.stats.count("stage_polish_seconds"), 1u);
  const SolverResult lpt = LptSolver().solve(instance);
  EXPECT_LE(result.makespan, lpt.makespan);
}

TEST(ResilientSolver, FaultMidBisectionDegradesGracefully) {
  const Instance instance = small_instance();
  CancellationToken token = CancellationToken::make();
  FaultInjector injector("bisection.probe", /*fire_at=*/3,
                         FaultInjector::Action::kCancel, token);
  FaultScope scope(injector);
  const SolverResult result = ResilientSolver(ResilientOptions{})
                                  .solve(instance, SolveContext::with_token(token));
  EXPECT_TRUE(injector.fired());
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "cancelled");
}

TEST(ResilientSolver, InjectedResourceThrowDegradesGracefully) {
  const Instance instance = small_instance();
  FaultInjector injector("bisection.probe", /*fire_at=*/2,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  const SolverResult result = ResilientSolver(ResilientOptions{}).solve(instance);
  EXPECT_TRUE(injector.fired());
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason").find("resource-limit"), 0u);
}

TEST(ResilientSolver, NonResourceErrorsPropagate) {
  // Degradation must not mask contract violations.
  ResilientOptions options;
  options.ptas.epsilon = -1.0;
  EXPECT_THROW((void)ResilientSolver(options).solve(small_instance()),
               InvalidArgumentError);
}

TEST(ResilientSolver, RecordsMetricsCountersAndNotes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const Instance instance = small_instance();
  obs::Metrics metrics(1);
  {
    obs::MetricsScope scope(metrics);
    ResilientOptions degraded;
    degraded.ptas.limits.max_table_entries = 4;
    (void)ResilientSolver(degraded).solve(instance);
    (void)ResilientSolver(ResilientOptions{}).solve(instance);
  }
  EXPECT_EQ(metrics.counter_total(obs::Counter::kResilientSolves), 2u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kResilientFallbacks), 1u);
  bool saw_last_solve = false;
  for (const auto& [key, value] : metrics.notes()) {
    if (key == "resilient.last_solve") {
      saw_last_solve = true;
      // The value is one consistent "<algorithm>;<reason>" pair.
      EXPECT_NE(value.find(';'), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(saw_last_solve);
}

TEST(ResilientSolver, CheapPathSkipsThePtas) {
  // ptas_enabled=false is the service's saturated-queue path: straight to
  // the constructive rungs, honest "ptas-skipped" provenance.
  const Instance instance = small_instance();
  ResilientOptions options;
  options.ptas_enabled = false;
  const SolverResult result = ResilientSolver(options).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.notes.at("degradation_reason"), "ptas-skipped");
  const std::string& algorithm = result.notes.at("algorithm_used");
  EXPECT_TRUE(algorithm.find("MULTIFIT") == 0 || algorithm.find("LPT") == 0)
      << algorithm;
  EXPECT_EQ(result.stats.at("stage_ptas_seconds"), 0.0);
  const SolverResult lpt = LptSolver().solve(instance);
  EXPECT_LE(result.makespan, lpt.makespan);
}

TEST(ResilientSolver, ConcurrentSolvesKeepProvenanceConsistent) {
  // Satellite bugfix check: two solves racing on the same ambient collector
  // must keep per-result notes correct, count resilient.* exactly, and never
  // publish a metrics note that mixes one solve's algorithm with the other's
  // reason. (The old two-key scheme could interleave pair-wise.)
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const Instance instance = small_instance();
  constexpr int kRounds = 4;
  obs::Metrics metrics(2);
  {
    obs::MetricsScope scope(metrics);
    std::thread degrading([&] {
      for (int i = 0; i < kRounds; ++i) {
        ResilientOptions options;
        options.ptas.limits.max_table_entries = 4;  // always trips
        const SolverResult result = ResilientSolver(options).solve(instance);
        EXPECT_EQ(result.notes.at("degradation_reason").find("resource-limit"),
                  0u);
      }
    });
    std::thread healthy([&] {
      for (int i = 0; i < kRounds; ++i) {
        const SolverResult result =
            ResilientSolver(ResilientOptions{}).solve(instance);
        EXPECT_EQ(result.notes.at("degradation_reason"), "none");
        EXPECT_NE(result.notes.at("algorithm_used").find("PTAS"),
                  std::string::npos);
      }
    });
    degrading.join();
    healthy.join();
  }
  EXPECT_EQ(metrics.counter_total(obs::Counter::kResilientSolves),
            2u * kRounds);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kResilientFallbacks),
            static_cast<std::uint64_t>(kRounds));
  for (const auto& [key, value] : metrics.notes()) {
    if (key != "resilient.last_solve") continue;
    // Whole-pair writes: the surviving note is one of the two valid pairs,
    // never a cross-solve mixture.
    const bool healthy_pair = value.find("PTAS;none") == 0;
    const bool degraded_pair =
        value.find(";resource-limit") != std::string::npos &&
        (value.find("MULTIFIT") == 0 || value.find("LPT") == 0);
    EXPECT_TRUE(healthy_pair || degraded_pair) << value;
  }
}

TEST(ResilientSolver, RejectsBadOptions) {
  ResilientOptions negative_limit;
  negative_limit.time_limit_ms = -5;
  EXPECT_THROW((void)ResilientSolver(negative_limit), InvalidArgumentError);
  ResilientOptions zero_multifit;
  zero_multifit.multifit_iterations = 0;
  EXPECT_THROW((void)ResilientSolver(zero_multifit), InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
