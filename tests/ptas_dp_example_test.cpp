// Locks down the paper's worked example (§III, Table I and Figure 1):
// N = (2,3) with rounded sizes 6 and 11, target T = 30, and the DP-table
// contents, level structure and processor assignment it implies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/dp_sequential.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

RoundedInstance paper_rounded() {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(30, 4);
  rounded.class_index = {6, 11};  // the paper labels classes by their size
  rounded.class_size = {6, 11};
  rounded.class_count = {2, 3};
  rounded.class_jobs = {{0, 1}, {2, 3, 4}};
  rounded.total_long_jobs = 5;
  return rounded;
}

TEST(PaperExample, TableHasTwelveEntries) {
  const StateSpace space({2, 3}, kBig);
  EXPECT_EQ(space.size(), 12u);  // (2+1)*(3+1), paper §III
}

TEST(PaperExample, FullDpTableContents) {
  // Hand-derived Table I. OPT(v1, v2) = minimum machines for v1 jobs of
  // size 6 and v2 jobs of size 11 within T = 30:
  //   (0,0)=0 (0,1)=1 (0,2)=1 (0,3)=2
  //   (1,0)=1 (1,1)=1 (1,2)=1 (1,3)=2
  //   (2,0)=1 (2,1)=1 (2,2)=2 (2,3)=2
  // e.g. (1,2): 6+11+11 = 28 <= 30 -> one machine; (0,3): 33 > 30 -> two.
  const RoundedInstance rounded = paper_rounded();
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  const DpRun run = dp_bottom_up(rounded, space, configs);

  const std::int32_t expected[12] = {0, 1, 1, 2, 1, 1, 1, 2, 1, 1, 2, 2};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(run.table.value(i), expected[i]) << "entry " << i;
  }
  EXPECT_EQ(run.machines_needed, 2);
}

TEST(PaperExample, DependenciesOfEquation11) {
  // Eq. (11): OPT(2,0) <- {OPT(1,0), OPT(0,0)},
  //           OPT(1,1) <- {OPT(1,0), OPT(0,1), OPT(0,0)},
  //           OPT(0,2) <- {OPT(0,1), OPT(0,0)}.
  // Predecessors of v are v - s over configs s <= v.
  const RoundedInstance rounded = paper_rounded();
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);

  auto predecessors = [&](std::vector<int> v) {
    std::set<std::vector<int>> result;
    for (std::size_t c = 0; c < configs.count(); ++c) {
      const auto s = configs.config(c);
      if (!config_fits(s, v)) continue;
      result.insert({v[0] - s[0], v[1] - s[1]});
    }
    return result;
  };

  EXPECT_EQ(predecessors({2, 0}),
            (std::set<std::vector<int>>{{1, 0}, {0, 0}}));
  EXPECT_EQ(predecessors({1, 1}),
            (std::set<std::vector<int>>{{1, 0}, {0, 1}, {0, 0}}));
  EXPECT_EQ(predecessors({0, 2}),
            (std::set<std::vector<int>>{{0, 1}, {0, 0}}));
}

TEST(PaperExample, AntiDiagonalLevelsMatchFigure1) {
  // Figure 1: six levels of widths 1,2,3,3,2,1; entries on one level are
  // independent (equal digit sums).
  const StateSpace space({2, 3}, kBig);
  EXPECT_EQ(space.max_level(), 5);
  EXPECT_EQ(space.level_histogram(),
            (std::vector<std::size_t>{1, 2, 3, 3, 2, 1}));
}

TEST(PaperExample, FourProcessorSweepNeverIdlesMoreThanNecessary) {
  // With P = 4 processors (the paper's illustration) every level fits in a
  // single parallel round: ceil(q_l / 4) = 1 for all levels.
  const StateSpace space({2, 3}, kBig);
  for (std::size_t q : space.level_histogram()) {
    EXPECT_EQ((q + 3) / 4, 1u);
  }
}

TEST(PaperExample, ParallelSweepReproducesTableOnFourProcessors) {
  const RoundedInstance rounded = paper_rounded();
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);

  ThreadPoolExecutor executor(4);
  ParallelDpOptions options;
  options.executor = &executor;
  options.variant = ParallelDpVariant::kScanPerLevel;  // Algorithm 3 verbatim
  options.schedule = LoopSchedule::kRoundRobin;        // paper's construct
  const DpRun run = dp_parallel(rounded, space, configs, options);

  const std::int32_t expected[12] = {0, 1, 1, 2, 1, 1, 1, 2, 1, 1, 2, 2};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(run.table.value(i), expected[i]);
  }
}

TEST(PaperExample, ReconstructionWalkUsesTwoMachines) {
  const RoundedInstance rounded = paper_rounded();
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  const DpRun run = dp_bottom_up(rounded, space, configs);

  // Walk back from OPT(2,3) following stored choices; must take exactly
  // machines_needed steps and consume the full vector.
  std::size_t index = space.size() - 1;
  int machines = 0;
  while (index != 0) {
    const std::int32_t choice = run.table.choice(index);
    ASSERT_NE(choice, DpTable::kNoChoice);
    // The choice is the encoded offset of the machine's configuration.
    index -= static_cast<std::size_t>(choice);
    ++machines;
    ASSERT_LE(machines, 12);
  }
  EXPECT_EQ(machines, run.machines_needed);
}

}  // namespace
}  // namespace pcmax
