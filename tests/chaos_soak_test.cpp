// Chaos soak: a live service stormed by a deterministic multi-site fault
// schedule while 8 concurrent submitters flood it with a duplicate-heavy
// mix. The acceptance bar is absolute: the soak completes (no crash, no
// hang, no dead worker), and EVERY submitted request resolves with either
// a valid schedule or structured degraded/shed/internal-error provenance.
// Runs under the `chaos` ctest label and, TSan-instrumented, under
// `sanitize` (tools/check.sh).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/instance_gen.hpp"
#include "service/solve_service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

// A ChaosInjector's fire schedule is a pure function of (seed, site): two
// identical single-threaded runs fire at identical hit ordinals, and every
// gap between fires stays inside [min_gap, max_gap].
TEST(ChaosInjector, ScheduleReplaysBitIdenticallyFromTheSeed) {
  ChaosOptions options;
  options.seed = 7;
  options.min_gap = 4;
  options.max_gap = 9;
  const auto run = [&options] {
    ChaosInjector chaos(options, {"soak.alpha", "soak.beta"});
    FaultScope scope(chaos);
    std::vector<std::vector<std::uint64_t>> fired_at(2);
    for (std::uint64_t i = 1; i <= 300; ++i) {
      const char* const sites[] = {"soak.alpha", "soak.beta"};
      for (std::size_t s = 0; s < 2; ++s) {
        try {
          fault_hit(sites[s]);
        } catch (const ResourceLimitError&) {
          fired_at[s].push_back(i);  // i == this site's own hit ordinal
        }
      }
    }
    return fired_at;
  };
  const std::vector<std::vector<std::uint64_t>> first = run();
  EXPECT_EQ(first, run());
  for (const std::vector<std::uint64_t>& site_fires : first) {
    ASSERT_GE(site_fires.size(), 2u);
    EXPECT_GE(site_fires.front(), options.min_gap);
    EXPECT_LE(site_fires.front(), options.max_gap);
    for (std::size_t i = 1; i < site_fires.size(); ++i) {
      const std::uint64_t gap = site_fires[i] - site_fires[i - 1];
      EXPECT_GE(gap, options.min_gap);
      EXPECT_LE(gap, options.max_gap);
    }
  }
  // The two sites run INDEPENDENT streams: they must not fire in lockstep.
  EXPECT_NE(first[0], first[1]);
}

// Concurrency regression: while one thread fires and republishes the next
// fire point, the others keep claiming hit ordinals. With an EQUALITY
// comparison the new fire point could be claimed before the store became
// visible, and the site then never fired again. The >=-based schedule
// guarantees the next fire point always stays within max_gap of the
// ordinals already claimed — so after any amount of concurrent hammering,
// one single-threaded burst of max_gap + 1 hits must produce a fire.
TEST(ChaosInjector, ConcurrentHammerNeverSilencesASite) {
  ChaosOptions options;
  options.seed = 11;
  options.min_gap = 2;
  options.max_gap = 8;
  ChaosInjector chaos(options, {"soak.hammer"});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kHitsPerThread = 20'000;
  std::vector<std::thread> hammers;
  hammers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&chaos] {
      for (std::uint64_t i = 0; i < kHitsPerThread; ++i) {
        try {
          chaos.on_hit("soak.hammer");
        } catch (const ResourceLimitError&) {
        }
      }
    });
  }
  for (std::thread& hammer : hammers) hammer.join();
  EXPECT_EQ(chaos.hits("soak.hammer"), kThreads * kHitsPerThread);
  EXPECT_GT(chaos.total_fires(), 0u);

  const std::uint64_t fires_before = chaos.fires("soak.hammer");
  bool fired = false;
  for (std::uint64_t i = 0; i <= options.max_gap && !fired; ++i) {
    try {
      chaos.on_hit("soak.hammer");
    } catch (const ResourceLimitError&) {
      fired = true;
    }
  }
  EXPECT_TRUE(fired) << "site went permanently quiet after the hammer";
  EXPECT_EQ(chaos.fires("soak.hammer"), fires_before + 1);
}

TEST(ChaosInjector, DifferentSeedsProduceDifferentSchedules) {
  const auto fires = [](std::uint64_t seed) {
    ChaosOptions options;
    options.seed = seed;
    options.min_gap = 2;
    options.max_gap = 40;
    ChaosInjector chaos(options, {"soak.gamma"});
    FaultScope scope(chaos);
    std::vector<std::uint64_t> fired_at;
    for (std::uint64_t i = 1; i <= 400; ++i) {
      try {
        fault_hit("soak.gamma");
      } catch (const ResourceLimitError&) {
        fired_at.push_back(i);
      }
    }
    return fired_at;
  };
  EXPECT_NE(fires(1), fires(2));
}

TEST(ChaosSoak, ServiceSurvivesAStormAcrossEveryRegisteredSite) {
  // Warm the site registry: one clean pass through the service touches
  // every site on the serving path (service.shard.dispatch, service.request,
  // service.cache, breaker.allow, service.future, and the solver-internal
  // sites below them).
  {
    ServiceOptions options;
    options.workers = 2;
    SolveService service(options);
    for (int seed = 0; seed < 3; ++seed) {
      const SolveResponse response =
          service
              .submit(SolveRequest{generate_instance(
                  InstanceFamily::kUniform1To100, 4, 20, seed, 0)})
              .get();
      ASSERT_EQ(response.degradation_reason, "none");
    }
  }
  const std::vector<std::string> sites = fault_sites();
  for (const char* required :
       {"service.request", "service.cache", "breaker.allow",
        "bisection.probe", "service.shard.dispatch", "service.future"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), required), sites.end())
        << "missing site " << required;
  }

  // Storm the full registry: every instrumented path can now throw.
  ChaosOptions chaos_options;
  chaos_options.seed = 2026;
  chaos_options.min_gap = 8;
  chaos_options.max_gap = 96;
  ChaosInjector chaos(chaos_options, sites);
  FaultScope scope(chaos);

  ServiceOptions options;
  options.shards = 4;  // soak the sharded dispatch path, not just one shard
  options.workers = 4;
  options.queue_capacity = 32;
  options.cache_capacity = 64;
  options.shed_policy = ShedPolicy::kTiered;
  options.breaker.failure_threshold = 2;
  options.breaker.open_rejects = 4;
  SolveService service(options);

  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 30;
  std::atomic<int> structured{0};
  std::atomic<int> solved{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        // Duplicate-heavy mix: 8 distinct problems across the whole soak,
        // so coalescing and the cache are constantly in play.
        const Instance instance = generate_instance(
            InstanceFamily::kUniform1To100, 3, 14, (s + i) % 8, 0);
        const SolveResponse response =
            service.submit(SolveRequest{instance}).get();
        ASSERT_FALSE(response.degradation_reason.empty());
        if (response.shed) {
          // Structured reject: provenance instead of a schedule.
          ASSERT_TRUE(
              response.degradation_reason.rfind("shed:", 0) == 0 ||
              response.degradation_reason == "internal-error")
              << response.degradation_reason;
          structured.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Anything else must carry a complete valid schedule, degraded
          // or not.
          ASSERT_NO_THROW(response.schedule.validate(instance))
              << response.degradation_reason;
          ASSERT_GT(response.makespan, 0);
          solved.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(solved.load() + structured.load(), kSubmitters * kPerSubmitter);
  // The storm actually stormed: chaos fired, and the service absorbed it.
  EXPECT_GT(chaos.total_fires(), 0u);
  EXPECT_GT(solved.load(), 0);
}

}  // namespace
}  // namespace pcmax
