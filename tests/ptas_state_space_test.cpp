#include "algo/ptas/state_space.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

TEST(StateSpace, SizeIsProductOfRadices) {
  EXPECT_EQ(StateSpace({2, 3}, kBig).size(), 12u);
  EXPECT_EQ(StateSpace({0, 0, 0}, kBig).size(), 1u);
  EXPECT_EQ(StateSpace({1, 1, 1, 1}, kBig).size(), 16u);
  EXPECT_EQ(StateSpace({}, kBig).size(), 1u);  // empty: only the origin
}

TEST(StateSpace, RowMajorOrderMatchesThePaperExample) {
  // Paper §III, array V for N = (2,3): (0,0),(0,1),...,(0,3),(1,0),...,(2,3).
  const StateSpace space({2, 3}, kBig);
  std::vector<int> digits(2);
  const std::vector<std::vector<int>> expected{
      {0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 1},
      {1, 2}, {1, 3}, {2, 0}, {2, 1}, {2, 2}, {2, 3}};
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode(i, digits);
    EXPECT_EQ(digits, expected[i]) << "index " << i;
  }
}

TEST(StateSpace, EncodeDecodeIsABijection) {
  const StateSpace space({2, 0, 3, 1}, kBig);
  std::vector<int> digits(4);
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode(i, digits);
    EXPECT_EQ(space.encode(digits), i);
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_GE(digits[d], 0);
      EXPECT_LE(digits[d], space.counts()[d]);
    }
  }
}

TEST(StateSpace, StridesAreRowMajor) {
  const StateSpace space({2, 3, 1}, kBig);
  // radices 3,4,2: strides 8,2,1.
  ASSERT_EQ(space.strides().size(), 3u);
  EXPECT_EQ(space.strides()[0], 8u);
  EXPECT_EQ(space.strides()[1], 2u);
  EXPECT_EQ(space.strides()[2], 1u);
}

TEST(StateSpace, LevelOfIsDigitSum) {
  const StateSpace space({2, 3}, kBig);
  std::vector<int> digits(2);
  for (std::size_t i = 0; i < space.size(); ++i) {
    space.decode(i, digits);
    EXPECT_EQ(space.level_of(i), digits[0] + digits[1]);
  }
}

TEST(StateSpace, MaxLevelIsSumOfCounts) {
  EXPECT_EQ(StateSpace({2, 3}, kBig).max_level(), 5);
  EXPECT_EQ(StateSpace({0, 0}, kBig).max_level(), 0);
  EXPECT_EQ(StateSpace({}, kBig).max_level(), 0);
}

TEST(StateSpace, LevelHistogramMatchesBruteForce) {
  const StateSpace space({2, 3, 2}, kBig);
  const std::vector<std::size_t> histogram = space.level_histogram();
  ASSERT_EQ(histogram.size(), static_cast<std::size_t>(space.max_level()) + 1);
  std::vector<std::size_t> expected(histogram.size(), 0);
  for (std::size_t i = 0; i < space.size(); ++i) {
    ++expected[static_cast<std::size_t>(space.level_of(i))];
  }
  EXPECT_EQ(histogram, expected);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(), std::size_t{0}),
            space.size());
}

TEST(StateSpace, PaperExampleHistogram) {
  // N = (2,3): anti-diagonal widths 1,2,3,3,2,1 (paper Figure 1 levels).
  const StateSpace space({2, 3}, kBig);
  EXPECT_EQ(space.level_histogram(),
            (std::vector<std::size_t>{1, 2, 3, 3, 2, 1}));
}

TEST(StateSpace, EnforcesEntryBudget) {
  EXPECT_THROW(StateSpace({99, 99, 99, 99}, 1000), ResourceLimitError);
  EXPECT_NO_THROW(StateSpace({9, 9}, 100));
  EXPECT_THROW(StateSpace({9, 9}, 99), ResourceLimitError);
}

TEST(StateSpace, GuardsAgainstSizeOverflow) {
  // 10 dimensions of radix 2^7 = 1.2e21 entries: must throw, not wrap.
  std::vector<int> counts(10, 127);
  EXPECT_THROW(StateSpace(std::move(counts), kBig), ResourceLimitError);
}

TEST(StateSpace, RejectsNegativeCounts) {
  EXPECT_THROW(StateSpace({2, -1}, kBig), InvalidArgumentError);
}

TEST(StateSpace, ZeroCountDimensionsAreDegenerate) {
  const StateSpace space({0, 2, 0}, kBig);
  EXPECT_EQ(space.size(), 3u);
  std::vector<int> digits(3);
  space.decode(2, digits);
  EXPECT_EQ(digits, (std::vector<int>{0, 2, 0}));
}

// ---------------------------------------------------------------------------
// level_counts and LevelWalker: the decode-free anti-diagonal machinery.
// ---------------------------------------------------------------------------

TEST(StateSpace, LevelCountsMatchHistogram) {
  // The convolution formula and the O(sigma) sweep must agree everywhere.
  const std::vector<std::vector<int>> shapes = {
      {2, 3}, {4}, {1, 1, 1, 1}, {0, 2, 0}, {3, 2, 2}, {}};
  for (const auto& shape : shapes) {
    const StateSpace space(shape, kBig);
    EXPECT_EQ(space.level_counts(), space.level_histogram());
  }
}

TEST(LevelWalker, WalksEveryLevelInIndexOrder) {
  const std::vector<std::vector<int>> shapes = {
      {2, 3}, {4}, {1, 1, 1, 1}, {0, 2, 0}, {3, 2, 2}};
  for (const auto& shape : shapes) {
    const StateSpace space(shape, kBig);
    LevelWalker walker(space);
    const std::vector<std::size_t> histogram = space.level_histogram();
    std::size_t visited = 0;
    for (int level = 0; level <= space.max_level(); ++level) {
      ASSERT_EQ(walker.level_size(level),
                histogram[static_cast<std::size_t>(level)]);
      if (walker.level_size(level) == 0) continue;
      walker.seek(level, 0);
      std::size_t previous = 0;
      for (std::uint64_t rank = 0; rank < walker.level_size(level); ++rank) {
        const std::size_t index = walker.index();
        // Digits must be consistent with the index and sum to the level.
        EXPECT_EQ(space.encode(walker.digits()), index);
        EXPECT_EQ(space.level_of(index), level);
        if (rank > 0) EXPECT_GT(index, previous);  // strictly increasing
        previous = index;
        ++visited;
        const bool more = walker.next();
        EXPECT_EQ(more, rank + 1 < walker.level_size(level));
      }
    }
    EXPECT_EQ(visited, space.size());  // every entry on exactly one level
  }
}

TEST(LevelWalker, SeekAgreesWithSequentialWalk) {
  const StateSpace space({3, 2, 2}, kBig);
  LevelWalker sequential(space);
  LevelWalker seeker(space);
  for (int level = 0; level <= space.max_level(); ++level) {
    const std::uint64_t width = sequential.level_size(level);
    if (width == 0) continue;
    sequential.seek(level, 0);
    for (std::uint64_t rank = 0; rank < width; ++rank) {
      seeker.seek(level, rank);
      EXPECT_EQ(seeker.index(), sequential.index())
          << "level " << level << " rank " << rank;
      if (rank + 1 < width) sequential.next();
    }
  }
}

TEST(LevelWalker, DegenerateSpaces) {
  // Dimensionless space: a single origin entry on level 0.
  const StateSpace empty({}, kBig);
  LevelWalker walker(empty);
  EXPECT_EQ(walker.level_size(0), 1u);
  walker.seek(0, 0);
  EXPECT_EQ(walker.index(), 0u);
  EXPECT_FALSE(walker.next());

  // Out-of-range seeks and levels are rejected.
  const StateSpace space({2, 1}, kBig);
  LevelWalker bounded(space);
  EXPECT_THROW((void)bounded.level_size(space.max_level() + 1), InternalError);
  EXPECT_THROW(bounded.seek(0, 1), InternalError);
}

}  // namespace
}  // namespace pcmax
