#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

/// Runs `n` iterations and asserts each index is visited exactly once.
void check_exactly_once(ThreadPool& pool, std::size_t n, LoopSchedule schedule,
                        std::size_t chunk = 1) {
  std::vector<std::atomic<int>> visits(n);
  pool.run(
      n,
      [&](std::size_t begin, std::size_t end, unsigned worker) {
        EXPECT_LT(worker, pool.size());
        for (std::size_t i = begin; i < end; ++i) {
          visits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      schedule, chunk);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgumentError);
}

TEST(ThreadPool, StaticScheduleCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {0u, 1u, 5u, 64u, 1000u}) {
      check_exactly_once(pool, n, LoopSchedule::kStatic);
    }
  }
}

TEST(ThreadPool, RoundRobinScheduleCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {1u, 2u, 17u, 256u}) {
      check_exactly_once(pool, n, LoopSchedule::kRoundRobin);
    }
  }
}

TEST(ThreadPool, DynamicScheduleCoversRangeExactlyOnce) {
  for (unsigned threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (std::size_t chunk : {1u, 3u, 100u}) {
      check_exactly_once(pool, 97, LoopSchedule::kDynamic, chunk);
    }
  }
}

TEST(ThreadPool, RoundRobinAssignsStridedIterations) {
  // Worker w must receive exactly the iterations congruent to w modulo P.
  constexpr unsigned kThreads = 4;
  constexpr std::size_t kN = 103;
  ThreadPool pool(kThreads);
  std::vector<std::atomic<unsigned>> owner(kN);
  pool.run(
      kN,
      [&](std::size_t begin, std::size_t end, unsigned worker) {
        EXPECT_EQ(end, begin + 1);  // round-robin delivers singletons
        owner[begin].store(worker);
      },
      LoopSchedule::kRoundRobin);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(owner[i].load(), i % kThreads);
  }
}

TEST(ThreadPool, StaticScheduleUsesContiguousBlocks) {
  constexpr unsigned kThreads = 3;
  constexpr std::size_t kN = 10;
  ThreadPool pool(kThreads);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.run(
      kN,
      [&](std::size_t begin, std::size_t end, unsigned) {
        std::lock_guard lock(mutex);
        ranges.emplace_back(begin, end);
      },
      LoopSchedule::kStatic);
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected_begin = 0;
  for (auto [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, kN);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(100,
               [](std::size_t begin, std::size_t, unsigned) {
                 if (begin == 42) throw std::runtime_error("boom");
               },
               LoopSchedule::kRoundRobin),
      std::runtime_error);
  // The pool stays usable after an exception.
  check_exactly_once(pool, 50, LoopSchedule::kStatic);
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t, std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RejectsZeroChunk) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.run(1, [](std::size_t, std::size_t, unsigned) {}, LoopSchedule::kDynamic,
               0),
      InvalidArgumentError);
}

TEST(ThreadPool, ManyConsecutiveRegionsAccumulateCorrectly) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(64, [&](std::size_t begin, std::size_t end, unsigned) {
      total.fetch_add(static_cast<long>(end - begin), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200L * 64);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  constexpr std::size_t kN = 100'000;
  std::vector<long> values(kN);
  std::iota(values.begin(), values.end(), 1);
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.run(kN, [&](std::size_t begin, std::size_t end, unsigned) {
    long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += values[i];
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long>(kN) * (kN + 1) / 2);
}

TEST(ThreadPool, ConcurrentExternalCallersAreSerialised) {
  // Several external threads submit regions to one pool at once; every
  // region must still cover its range exactly once (regions are serialised
  // internally, never interleaved).
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kRegionsPerCaller = 25;
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRegionsPerCaller; ++r) {
        pool.run(100, [&](std::size_t begin, std::size_t end, unsigned) {
          total.fetch_add(static_cast<long>(end - begin),
                          std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), kCallers * kRegionsPerCaller * 100L);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace pcmax
