// Concurrency stress tests for ThreadPool, designed to run under
// ThreadSanitizer (ctest -L sanitize on a PCMAX_SANITIZE=thread build).
// Each case hammers one contract hard but briefly (<~2s): region
// serialisation across external submitter threads, iteration conservation
// under every LoopSchedule, exception propagation from dynamic regions, and
// metrics recording under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace pcmax {
namespace {

constexpr LoopSchedule kAllSchedules[] = {
    LoopSchedule::kStatic, LoopSchedule::kRoundRobin, LoopSchedule::kDynamic};

TEST(ParallelStress, ExternalSubmittersSerialiseOnOnePool) {
  // `run` documents that concurrent calls from different external threads
  // are serialised. Hammer one pool from several submitters at once; every
  // region must still process each of its iterations exactly once.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kRegionsPerSubmitter = 40;
  constexpr std::size_t kIterations = 512;

  std::atomic<std::uint64_t> grand_total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &grand_total, s] {
      const LoopSchedule schedule = kAllSchedules[s % 3];
      for (int r = 0; r < kRegionsPerSubmitter; ++r) {
        std::vector<std::uint8_t> hits(kIterations, 0);
        pool.run(
            kIterations,
            [&hits](std::size_t begin, std::size_t end, unsigned) {
              for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
            },
            schedule, /*chunk=*/7);
        std::uint64_t covered = 0;
        for (const std::uint8_t h : hits) {
          ASSERT_EQ(h, 1) << "iteration processed " << int{h} << " times";
          covered += h;
        }
        grand_total.fetch_add(covered, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(grand_total.load(),
            std::uint64_t{kSubmitters} * kRegionsPerSubmitter * kIterations);
}

TEST(ParallelStress, EverySchedulePartitionsWithoutOverlap) {
  // For each schedule, per-worker iteration sets must partition [0, n):
  // writing the worker id into a shared array and checking coverage makes
  // any double assignment a visible value clash (and a TSan race).
  ThreadPool pool(8);
  for (const LoopSchedule schedule : kAllSchedules) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{100000}}) {
      std::vector<std::int8_t> owner(n, -1);
      std::vector<std::uint64_t> per_worker(pool.size(), 0);
      pool.run(
          n,
          [&](std::size_t begin, std::size_t end, unsigned worker) {
            for (std::size_t i = begin; i < end; ++i) {
              owner[i] = static_cast<std::int8_t>(worker);
            }
            per_worker[worker] += end - begin;
          },
          schedule, /*chunk=*/13);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_GE(owner[i], 0) << "iteration " << i << " never ran";
      }
      // Sum of per-worker iteration counts == n, the conservation law the
      // metrics layer also reports.
      EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(),
                                std::uint64_t{0}),
                n)
          << loop_schedule_name(schedule) << " n=" << n;
    }
  }
}

TEST(ParallelStress, DynamicExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::uint64_t> before_throw{0};
    try {
      pool.run(
          10000,
          [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t i = begin; i < end; ++i) {
              if (i == 7777) throw std::runtime_error("boom");
              before_throw.fetch_add(1, std::memory_order_relaxed);
            }
          },
          LoopSchedule::kDynamic, /*chunk=*/32);
      FAIL() << "exception did not propagate (round " << round << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom");
    }
    // The pool must remain fully usable after an exceptional region.
    std::atomic<std::uint64_t> total{0};
    pool.run(1000, [&](std::size_t begin, std::size_t end, unsigned) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 1000u);
  }
}

TEST(ParallelStress, ExceptionsFromMultipleWorkersPickOne) {
  ThreadPool pool(8);
  for (const LoopSchedule schedule : kAllSchedules) {
    try {
      pool.run(
          8000,
          [](std::size_t, std::size_t, unsigned worker) {
            throw std::runtime_error("worker " + std::to_string(worker));
          },
          schedule);
      FAIL() << "exception did not propagate";
    } catch (const std::runtime_error& error) {
      EXPECT_EQ(std::string(error.what()).rfind("worker ", 0), 0u);
    }
  }
}

TEST(ParallelStress, MetricsRecordingUnderContention) {
  // Counters are relaxed atomics in per-worker slots; hammering them from
  // all workers and submitters at once must be race-free (TSan-checked) and
  // conserve totals exactly.
  obs::Metrics metrics(8);
  const obs::MetricsScope scope(metrics);
  ThreadPool pool(8);
  constexpr int kRegions = 60;
  constexpr std::size_t kIterations = 4096;
  for (int r = 0; r < kRegions; ++r) {
    pool.run(
        kIterations,
        [&metrics](std::size_t begin, std::size_t end, unsigned worker) {
          metrics.add(worker, obs::Counter::kDpEntries, end - begin);
          metrics.add_timer(obs::Timer::kDpLevel, 1);
          if (begin == 0) metrics.add_span("stress.first", worker, 1, 2);
        },
        kAllSchedules[r % 3], /*chunk=*/64);
  }
  EXPECT_EQ(metrics.counter_total(obs::Counter::kDpEntries),
            std::uint64_t{kRegions} * kIterations);
  if constexpr (obs::kMetricsEnabled) {
    // The pool's own instrumentation saw every iteration too.
    EXPECT_EQ(metrics.counter_total(obs::Counter::kPoolIterations),
              std::uint64_t{kRegions} * kIterations);
    EXPECT_EQ(metrics.counter_total(obs::Counter::kPoolRegions),
              std::uint64_t{kRegions});
  }
  EXPECT_EQ(metrics.spans().size() + metrics.dropped_spans(),
            std::uint64_t{kRegions});
}

TEST(ParallelStress, PoolConstructionTeardownChurn) {
  // Races in worker startup/shutdown handshakes only show up under churn.
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(1 + round % 8);
    std::atomic<std::uint64_t> total{0};
    pool.run(256, [&](std::size_t begin, std::size_t end, unsigned) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 256u);
  }
}

}  // namespace
}  // namespace pcmax
