#include "algo/ptas/bisection.hpp"

#include <gtest/gtest.h>

#include "algo/ptas/dp_sequential.hpp"
#include "algo/ptas/reconstruct.hpp"
#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

DpBackendFn bottom_up_backend() {
  return [](const RoundedInstance& rounded, const StateSpace& space,
            const ConfigSet& configs) {
    return dp_bottom_up(rounded, space, configs);
  };
}

TEST(RunDpAt, ProducesAFeasibleProbeAtTheUpperBound) {
  const Instance instance(3, {9, 8, 7, 6, 5, 4});
  const Time ub = makespan_upper_bound(instance);
  const DpAtTarget at = run_dp_at(instance, ub, 4, bottom_up_backend(), {});
  EXPECT_NE(at.run.machines_needed, DpTable::kInfeasible);
  EXPECT_LE(at.run.machines_needed, instance.machines());
}

TEST(RunDpAt, RejectsTargetsBelowTheLongestJob) {
  const Instance instance(2, {40, 5});
  EXPECT_THROW((void)run_dp_at(instance, 30, 4, bottom_up_backend(), {}),
               InternalError);
}

TEST(RunDpAt, HonoursTableBudget) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 30, 3, 0);
  DpLimits limits;
  limits.max_table_entries = 2;  // absurdly small: must trip
  EXPECT_THROW((void)run_dp_at(instance, makespan_lower_bound(instance), 4,
                               bottom_up_backend(), limits),
               ResourceLimitError);
}

TEST(Bisection, ConvergesWithConsistentTrace) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 5, 0);
  const BisectionResult result =
      bisect_target_makespan(instance, 4, bottom_up_backend(), {});

  EXPECT_EQ(result.lb0, makespan_lower_bound(instance));
  EXPECT_EQ(result.ub0, makespan_upper_bound(instance));
  EXPECT_GE(result.t_star, result.lb0);
  EXPECT_LE(result.t_star, result.ub0);
  EXPECT_FALSE(result.trace.empty());

  // The trace replays a correct bisection: feasible probes lower UB,
  // infeasible probes raise LB, targets always the midpoint.
  Time lb = result.lb0;
  Time ub = result.ub0;
  for (const BisectionIteration& it : result.trace) {
    EXPECT_EQ(it.target, lb + (ub - lb) / 2);
    if (it.feasible) {
      ub = it.target;
    } else {
      lb = it.target + 1;
    }
  }
  EXPECT_EQ(lb, ub);
  EXPECT_EQ(result.t_star, lb);
}

TEST(Bisection, IterationCountIsLogarithmic) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10N, 3, 15, 6, 0);
  const BisectionResult result =
      bisect_target_makespan(instance, 4, bottom_up_backend(), {});
  // ceil(log2(UB-LB)) + 1 iterations at most.
  int bound = 1;
  for (Time range = result.ub0 - result.lb0; range > 0; range /= 2) ++bound;
  EXPECT_LE(static_cast<int>(result.trace.size()), bound);
}

TEST(Bisection, TStarIsNeverAboveTheOptimum) {
  // T* is the smallest target whose *rounded* relaxation fits on m machines;
  // since rounding only shrinks jobs, T* <= OPT.
  for (std::uint64_t index = 0; index < 5; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 3, 10, 11, index);
    const BisectionResult result =
        bisect_target_makespan(instance, 4, bottom_up_backend(), {});
    EXPECT_LE(result.t_star, brute_force_optimum(instance)) << "#" << index;
  }
}

TEST(Bisection, FinalTargetIsFeasibleWhenReprobed) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 4, 20, 13, 0);
  const BisectionResult result =
      bisect_target_makespan(instance, 4, bottom_up_backend(), {});
  const DpAtTarget at =
      run_dp_at(instance, result.t_star, 4, bottom_up_backend(), {});
  EXPECT_LE(at.run.machines_needed, instance.machines());
}

TEST(Bisection, TraceRecordsDpShape) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 5, 1);
  const BisectionResult result =
      bisect_target_makespan(instance, 4, bottom_up_backend(), {});
  for (const BisectionIteration& it : result.trace) {
    std::size_t expected_size = 1;
    for (int c : it.counts) expected_size *= static_cast<std::size_t>(c) + 1;
    EXPECT_EQ(it.table_size, expected_size);
    EXPECT_EQ(it.entries_computed, it.table_size);  // bottom-up fills all
    EXPECT_GE(it.dp_seconds, 0.0);
  }
}

TEST(Reconstruct, FullScheduleIsValidAndWithinTheGuarantee) {
  for (std::uint64_t index = 0; index < 5; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 3, 10, 17, index);
    const int k = 4;
    const BisectionResult result =
        bisect_target_makespan(instance, k, bottom_up_backend(), {});
    const DpAtTarget at =
        run_dp_at(instance, result.t_star, k, bottom_up_backend(), {});
    const Schedule schedule = reconstruct_full_schedule(instance, at);
    schedule.validate(instance);
    // Makespan <= (1 + 1/k) * T* (paper's guarantee chain).
    EXPECT_LE(schedule.makespan(instance) * k, (k + 1) * result.t_star)
        << "#" << index;
  }
}

TEST(Reconstruct, LongOnlyScheduleCoversExactlyTheLongJobs) {
  const Instance instance(3, {25, 24, 23, 3, 2, 1});
  const BisectionResult result =
      bisect_target_makespan(instance, 4, bottom_up_backend(), {});
  const DpAtTarget at =
      run_dp_at(instance, result.t_star, 4, bottom_up_backend(), {});
  const Schedule long_schedule = reconstruct_long_schedule(instance, at);
  EXPECT_EQ(long_schedule.assigned_jobs(), at.rounded.total_long_jobs);
}

}  // namespace
}  // namespace pcmax
