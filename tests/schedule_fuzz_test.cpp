// Randomised fuzz over the schedule data path: random valid schedules must
// survive every representation change (assignment vector, text, Gantt,
// simulator) unchanged, and random single-step corruptions must be caught
// by validation. Complements the deterministic unit tests with breadth.
#include <gtest/gtest.h>

#include "core/gantt.hpp"
#include "core/instance_gen.hpp"
#include "core/io.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

Instance random_instance(Xoshiro256StarStar& rng) {
  const int machines = static_cast<int>(uniform_int(rng, 1, 6));
  const int jobs = static_cast<int>(uniform_int(rng, 1, 30));
  std::vector<Time> times;
  for (int j = 0; j < jobs; ++j) times.push_back(uniform_int(rng, 1, 500));
  return Instance(machines, std::move(times));
}

Schedule random_schedule(const Instance& instance, Xoshiro256StarStar& rng) {
  Schedule schedule(instance.machines());
  for (int j = 0; j < instance.jobs(); ++j) {
    schedule.assign(
        static_cast<int>(uniform_int(rng, 0, instance.machines() - 1)), j);
  }
  return schedule;
}

TEST(ScheduleFuzz, RandomSchedulesSurviveEveryRepresentation) {
  Xoshiro256StarStar rng(0xFADE);
  for (int round = 0; round < 50; ++round) {
    const Instance instance = random_instance(rng);
    const Schedule schedule = random_schedule(instance, rng);
    schedule.validate(instance);

    // Assignment-vector round trip.
    const Schedule via_assignment = Schedule::from_assignment(
        instance.machines(), schedule.assignment(instance));
    EXPECT_EQ(via_assignment.makespan(instance), schedule.makespan(instance));

    // Text round trip.
    const Schedule via_text = schedule_from_text(
        instance, schedule_to_text(instance, schedule));
    EXPECT_EQ(via_text.assignment(instance), schedule.assignment(instance));

    // Simulator agreement.
    EXPECT_EQ(simulate_schedule(instance, schedule).makespan,
              schedule.makespan(instance));

    // Gantt rendering never throws on a valid schedule and mentions the
    // makespan row marker.
    const std::string chart = render_gantt(instance, schedule);
    EXPECT_NE(chart.find("<- makespan"), std::string::npos) << "round " << round;
  }
}

TEST(ScheduleFuzz, CorruptedSchedulesAreRejected) {
  Xoshiro256StarStar rng(0xBEEF);
  int corruptions_checked = 0;
  for (int round = 0; round < 50; ++round) {
    const Instance instance = random_instance(rng);
    if (instance.jobs() < 2) continue;
    Schedule schedule = random_schedule(instance, rng);

    switch (uniform_int(rng, 0, 2)) {
      case 0: {  // duplicate a job
        schedule.assign(0, static_cast<int>(uniform_int(
                               rng, 0, instance.jobs() - 1)));
        break;
      }
      case 1: {  // out-of-range job index
        schedule.assign(0, instance.jobs() + 5);
        break;
      }
      default: {  // drop a job: rebuild with one fewer
        Schedule smaller(instance.machines());
        for (int j = 0; j + 1 < instance.jobs(); ++j) smaller.assign(0, j);
        schedule = std::move(smaller);
        break;
      }
    }
    EXPECT_THROW(schedule.validate(instance), InvalidArgumentError)
        << "round " << round;
    EXPECT_FALSE(schedule.is_valid(instance));
    ++corruptions_checked;
  }
  EXPECT_GT(corruptions_checked, 30);
}

TEST(ScheduleFuzz, InstanceTextRoundTripUnderRandomShapes) {
  Xoshiro256StarStar rng(0xCAFE);
  std::vector<Instance> instances;
  for (int round = 0; round < 30; ++round) {
    instances.push_back(random_instance(rng));
  }
  std::stringstream buffer;
  write_instances(buffer, instances);
  EXPECT_EQ(read_instances(buffer), instances);
}

}  // namespace
}  // namespace pcmax
