#include "harness/scaling.hpp"

#include <gtest/gtest.h>

#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(DpShape, PaperExampleNumbers) {
  // N = (2,3): work 12, levels 6 (widths 1,2,3,3,2,1), widest 3.
  const DpShape shape = analyze_dp_shape({2, 3});
  EXPECT_EQ(shape.work, 12u);
  EXPECT_EQ(shape.levels, 6);
  EXPECT_EQ(shape.widest, 3u);
  EXPECT_DOUBLE_EQ(shape.parallelism, 2.0);
}

TEST(DpShape, RoundsMatchCeilSums) {
  const DpShape shape = analyze_dp_shape({2, 3});
  // P=1: 12 rounds; P=2: 1+1+2+2+1+1 = 8; P=4: 6 (one per level).
  EXPECT_EQ(shape.rounds(1), 12u);
  EXPECT_EQ(shape.rounds(2), 8u);
  EXPECT_EQ(shape.rounds(4), 6u);
  EXPECT_EQ(shape.rounds(1000), 6u);  // span floor
}

TEST(DpShape, SpeedupBoundIsBrentLike) {
  const DpShape shape = analyze_dp_shape({2, 3});
  EXPECT_DOUBLE_EQ(shape.speedup_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(shape.speedup_bound(4), 2.0);       // 12 / 6
  EXPECT_DOUBLE_EQ(shape.speedup_bound(1 << 20), 2.0);  // = parallelism
  // The bound never exceeds P nor the structural parallelism.
  for (unsigned p : {1u, 2u, 3u, 4u, 8u}) {
    EXPECT_LE(shape.speedup_bound(p), static_cast<double>(p) + 1e-12);
    EXPECT_LE(shape.speedup_bound(p), shape.parallelism + 1e-12);
  }
}

TEST(DpShape, MonotoneInProcessors) {
  const DpShape shape = analyze_dp_shape({4, 3, 5});
  double previous = 0.0;
  for (unsigned p = 1; p <= 64; p *= 2) {
    const double bound = shape.speedup_bound(p);
    EXPECT_GE(bound, previous - 1e-12);
    previous = bound;
  }
}

TEST(DpShape, DegenerateTables) {
  const DpShape empty = analyze_dp_shape({});
  EXPECT_EQ(empty.work, 1u);
  EXPECT_EQ(empty.levels, 1);
  EXPECT_DOUBLE_EQ(empty.speedup_bound(8), 1.0);

  const DpShape zero = analyze_dp_shape({0, 0});
  EXPECT_EQ(zero.work, 1u);
  EXPECT_EQ(zero.levels, 1);
}

TEST(DpShape, RejectsZeroProcessors) {
  const DpShape shape = analyze_dp_shape({2, 3});
  EXPECT_THROW((void)shape.rounds(0), InvalidArgumentError);
}

TEST(RunShape, AggregatesAcrossProbes) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 3, 0);
  PtasOptions options;
  options.keep_trace = true;
  const PtasResult run = PtasSolver(options).solve_with_trace(instance);
  const RunShape shape = analyze_run_shape(run.bisection);

  ASSERT_EQ(shape.probes.size(), run.bisection.trace.size());
  std::size_t work = 0;
  for (const DpShape& probe : shape.probes) work += probe.work;
  EXPECT_EQ(shape.total_work, work);
  EXPECT_GT(shape.parallelism, 0.0);
  // Aggregate bound interpolates between per-probe bounds.
  EXPECT_LE(shape.speedup_bound(8), 8.0 + 1e-9);
  EXPECT_GE(shape.speedup_bound(8), 1.0 - 1e-9);
  // Consistency with the raw trace sizes.
  for (std::size_t p = 0; p < shape.probes.size(); ++p) {
    EXPECT_EQ(shape.probes[p].work, run.bisection.trace[p].table_size);
  }
}

TEST(RunShape, EmptyTraceIsNeutral) {
  const RunShape shape = analyze_run_shape(BisectionResult{});
  EXPECT_EQ(shape.total_work, 0u);
  EXPECT_DOUBLE_EQ(shape.speedup_bound(4), 1.0);
}

}  // namespace
}  // namespace pcmax
