// Failure-injection tests: resource budgets tripping mid-algorithm, hostile
// executors, and deterministic FaultInjector-driven cancellation must surface
// as typed exceptions (or anytime incumbents), never as corrupted results or
// hangs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"
#include "core/portfolio.hpp"
#include "core/solve_context.hpp"
#include "mip/pcmax_ip.hpp"
#include "service/solve_service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

TEST(FailureInjection, TableBudgetTripsDuringTheBisection) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.limits.max_table_entries = 4;  // guaranteed to trip at some probe
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

TEST(FailureInjection, ConfigBudgetTripsDuringTheBisection) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.limits.max_configs = 1;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

TEST(FailureInjection, BudgetErrorsReportLimitAndDemand) {
  // Satellite: every ResourceLimitError message names both the configured
  // limit and the observed demand, in the uniform
  // "<what>: demand [at least] D exceeds limit L" format.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.limits.max_table_entries = 4;
  try {
    (void)PtasSolver(options).solve(instance);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("demand"), std::string::npos) << message;
    EXPECT_NE(message.find("exceeds limit 4"), std::string::npos) << message;
  }
}

TEST(FailureInjection, BudgetTripsInsideSpeculativeProbesToo) {
  // The exception is raised on a probe thread and must be rethrown on the
  // caller, with the remaining probe threads joined (no leaks, no hang).
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.speculation = 4;
  options.limits.max_table_entries = 4;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

/// An executor that fails a configurable number of calls in.
class FlakyExecutor final : public Executor {
 public:
  explicit FlakyExecutor(int fail_after) : remaining_(fail_after) {}

  [[nodiscard]] unsigned concurrency() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "flaky"; }

  void parallel_for_ranges(std::size_t n, const ThreadPool::RangeBody& body,
                           LoopSchedule, std::size_t,
                           const CancellationToken& cancel) override {
    if (remaining_-- <= 0) throw std::runtime_error("injected executor failure");
    if (cancel.valid() && cancel.cancel_requested()) cancel.check();
    if (n > 0) body(0, n, 0);
  }

 private:
  int remaining_;
};

TEST(FailureInjection, ExecutorFailurePropagatesThroughTheParallelDp) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  FlakyExecutor executor(/*fail_after=*/3);
  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), std::runtime_error);
}

TEST(FailureInjection, HealthyExecutorAfterFailureStillWorks) {
  // A pool that has propagated an exception must remain usable — the PTAS
  // retried on the same executor succeeds.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  ThreadPoolExecutor executor(2);
  // Inject one failing region directly, then reuse the pool for a solve.
  EXPECT_THROW(executor.parallel_for_ranges(
                   1,
                   [](std::size_t, std::size_t, unsigned) {
                     throw std::runtime_error("boom");
                   },
                   LoopSchedule::kStatic, 1, CancellationToken{}),
               std::runtime_error);

  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  const SolverResult result = PtasSolver(options).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, PtasSolver(PtasOptions{}).solve(instance).makespan);
}

TEST(FailureInjection, GenerousBudgetsDoNotTrip) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  PtasOptions options;  // default budgets
  EXPECT_NO_THROW((void)PtasSolver(options).solve(instance));
}

// --- deterministic FaultInjector-driven cancellation ---

Instance fault_instance() {
  return generate_instance(InstanceFamily::kUniform1To100, 5, 30, 3, 0);
}

TEST(FaultInjection, CancelAtNthDpLevelAbortsTheSolve) {
  const Instance instance = fault_instance();
  ThreadPoolExecutor executor(2);
  for (DpEngine engine : {DpEngine::kParallelScan, DpEngine::kParallelBucketed,
                          DpEngine::kSpmd}) {
    CancellationToken token = CancellationToken::make();
    FaultInjector injector("dp.level", /*fire_at=*/2, FaultInjector::Action::kCancel,
                           token);
    FaultScope scope(injector);
    PtasOptions options;
    options.engine = engine;
    options.executor = &executor;
    options.spmd_threads = 2;
    EXPECT_THROW((void)PtasSolver(options).solve(
                     instance, SolveContext::with_token(token)),
                 CancelledError)
        << "engine " << static_cast<int>(engine);
    EXPECT_TRUE(injector.fired());
  }
}

TEST(FaultInjection, CancelAtNthBisectionProbeAbortsTheSolve) {
  const Instance instance = fault_instance();
  CancellationToken token = CancellationToken::make();
  FaultInjector injector("bisection.probe", /*fire_at=*/2,
                         FaultInjector::Action::kCancel, token);
  FaultScope scope(injector);
  PtasOptions options;
  EXPECT_THROW((void)PtasSolver(options).solve(instance,
                                               SolveContext::with_token(token)),
               CancelledError);
  EXPECT_TRUE(injector.fired());
}

TEST(FaultInjection, ThrowAtNthExecutorTaskPropagatesAndPoolSurvives) {
  const Instance instance = fault_instance();
  ThreadPoolExecutor executor(2);
  {
    FaultInjector injector("pool.task", /*fire_at=*/4,
                           FaultInjector::Action::kThrow);
    FaultScope scope(injector);
    PtasOptions options;
    options.engine = DpEngine::kParallelScan;
    options.executor = &executor;
    EXPECT_THROW((void)PtasSolver(options).solve(instance), ResourceLimitError);
    EXPECT_TRUE(injector.fired());
  }
  // Scope removed the injector; the same pool must finish a clean solve.
  PtasOptions options;
  options.engine = DpEngine::kParallelScan;
  options.executor = &executor;
  const SolverResult result = PtasSolver(options).solve(instance);
  result.schedule.validate(instance);
}

TEST(FaultInjection, CancelMidDpLeavesThePoolReusable) {
  const Instance instance = fault_instance();
  ThreadPoolExecutor executor(2);
  {
    CancellationToken token = CancellationToken::make();
    FaultInjector injector("dp.level", /*fire_at=*/3,
                           FaultInjector::Action::kCancel, token);
    FaultScope scope(injector);
    PtasOptions options;
    options.engine = DpEngine::kParallelBucketed;
    options.executor = &executor;
    EXPECT_THROW((void)PtasSolver(options).solve(
                     instance, SolveContext::with_token(token)),
                 CancelledError);
  }
  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  const SolverResult result = PtasSolver(options).solve(instance);
  result.schedule.validate(instance);
}

TEST(FaultInjection, CancelAtNthMipNodeReturnsIncumbent) {
  // The B&B is anytime: a cancel mid-search returns the best incumbent with
  // proven_optimal=false instead of throwing.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 14, 7, 0);
  CancellationToken token = CancellationToken::make();
  FaultInjector injector("mip.node", /*fire_at=*/5,
                         FaultInjector::Action::kCancel, token);
  FaultScope scope(injector);
  MipOptions options;
  const SolverResult result =
      PcmaxIpSolver(options).solve(instance, SolveContext::with_token(token));
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(result.proven_optimal);
  result.schedule.validate(instance);
  ASSERT_TRUE(result.notes.count("limit_reason"));
  EXPECT_EQ(result.notes.at("limit_reason"), "cancelled");
}

// --- batch-service fault sites ---

TEST(FaultInjection, ServiceRequestFaultDegradesWithProvenance) {
  // An injected ResourceLimitError at the request site must answer via the
  // degraded path (valid schedule, honest reason), never via the future's
  // exception — and the degraded result must never be cached.
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 1;
  FaultInjector injector("service.request", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  SolveService service(options);
  const SolveResponse faulted = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(injector.fired());
  faulted.schedule.validate(instance);
  EXPECT_TRUE(faulted.degraded);
  EXPECT_EQ(faulted.degradation_reason.find("resource-limit"), 0u)
      << faulted.degradation_reason;
  EXPECT_FALSE(faulted.cache_hit);
  // The follow-up must MISS (no poisoned cache), solve healthily, and only
  // then seed the cache.
  const SolveResponse fresh = service.submit(SolveRequest{instance}).get();
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_FALSE(fresh.degraded) << fresh.degradation_reason;
  const SolveResponse cached = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.makespan, fresh.makespan);
}

TEST(FaultInjection, ServiceCacheLookupFaultBypassesToARecompute) {
  // A failing cache lookup costs a recompute, never availability — and the
  // response stays full-fidelity (not degraded).
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 1;
  FaultInjector injector("service.cache", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  SolveService service(options);
  const SolveResponse bypassed = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(injector.fired());
  bypassed.schedule.validate(instance);
  EXPECT_FALSE(bypassed.degraded) << bypassed.degradation_reason;
  EXPECT_FALSE(bypassed.cache_hit);
  ASSERT_TRUE(bypassed.notes.count("cache"));
  EXPECT_EQ(bypassed.notes.at("cache").find("lookup-bypassed"), 0u)
      << bypassed.notes.at("cache");
  // The store after the bypassed lookup succeeded: next request hits.
  const SolveResponse hit = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.makespan, bypassed.makespan);
}

TEST(FaultInjection, ServiceCacheStoreFaultSkipsCachingButAnswers) {
  // Hit ordering on the "service.cache" site: hit 1 = first request's
  // lookup, hit 2 = its store. Firing at the store must deliver the healthy
  // answer and simply leave the cache cold.
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 1;
  FaultInjector injector("service.cache", /*fire_at=*/2,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  SolveService service(options);
  const SolveResponse skipped = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(injector.fired());
  skipped.schedule.validate(instance);
  EXPECT_FALSE(skipped.degraded) << skipped.degradation_reason;
  ASSERT_TRUE(skipped.notes.count("cache"));
  EXPECT_EQ(skipped.notes.at("cache").find("store-skipped"), 0u)
      << skipped.notes.at("cache");
  // Nothing was cached: the next request misses, solves, and stores.
  const SolveResponse fresh = service.submit(SolveRequest{instance}).get();
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.makespan, skipped.makespan);
  EXPECT_TRUE(service.submit(SolveRequest{instance}).get().cache_hit);
}

TEST(FaultInjection, ServiceQueueDrainsUnderARequestFault) {
  // One fault in the middle of a batch must not stall the queue: every
  // future resolves, exactly one response is degraded.
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 2;
  options.cache_capacity = 0;  // force every request through a full solve
  FaultInjector injector("service.request", /*fire_at=*/3,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  int degraded = 0;
  {
    SolveService service(options);
    std::vector<SolveFuture> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(service.submit(SolveRequest{instance}));
    }
    for (auto& future : futures) {
      const SolveResponse response = future.get();
      response.schedule.validate(instance);
      if (response.degraded) ++degraded;
    }
  }
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(degraded, 1);
}

TEST(FaultInjection, ServiceShardDispatchFaultShedsStructurally) {
  // Site "service.shard.dispatch" fires on the SUBMITTER thread, after the
  // request is fingerprinted and routed but before it takes a queue slot. The
  // future must resolve to a structured shed carrying the routing identity —
  // and the shard must stay fully serviceable afterwards (no leaked slot, no
  // poisoned state).
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 1;
  FaultInjector injector("service.shard.dispatch", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  SolveService service(options);
  const SolveResponse shed = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.degradation_reason, "shed:dispatch-fault");
  ASSERT_TRUE(shed.notes.count("dispatch_fault"));
  // The shed response carries the identity the router computed.
  EXPECT_EQ(shed.fingerprint,
            request_fingerprint(CanonicalInstance(instance), options.epsilon));
  EXPECT_EQ(static_cast<std::size_t>(shed.shard),
            service.shard_of(shed.fingerprint));
  // The injector is spent: the identical follow-up flows through the full
  // pipeline, misses (the shed was never cached), solves, and seeds the
  // cache — proving no queue slot or coalescing entry leaked.
  const SolveResponse fresh = service.submit(SolveRequest{instance}).get();
  EXPECT_FALSE(fresh.shed);
  EXPECT_FALSE(fresh.degraded) << fresh.degradation_reason;
  EXPECT_FALSE(fresh.cache_hit);
  fresh.schedule.validate(instance);
  EXPECT_TRUE(service.submit(SolveRequest{instance}).get().cache_hit);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.shed_overload, 1);
}

TEST(FaultInjection, ServiceFutureFaultNeverLosesTheResponse) {
  // Site "service.future" fires inside promise delivery, AFTER the response
  // has been computed. Losing the answer there would strand the waiter — the
  // fault must be absorbed into provenance, with the full-fidelity response
  // still delivered.
  const Instance instance = fault_instance();
  ServiceOptions options;
  options.workers = 1;
  FaultInjector injector("service.future", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  SolveService service(options);
  const SolveResponse survived = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(injector.fired());
  survived.schedule.validate(instance);
  EXPECT_FALSE(survived.shed);
  EXPECT_FALSE(survived.degraded) << survived.degradation_reason;
  ASSERT_TRUE(survived.notes.count("future_fault"));
  EXPECT_EQ(survived.notes.at("future_fault").find("survived"), 0u)
      << survived.notes.at("future_fault");
  // Delivery completed normally: the future is repeatable and the cache was
  // seeded by the same healthy pipeline pass.
  const SolveResponse hit = service.submit(SolveRequest{instance}).get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.makespan, survived.makespan);
  EXPECT_FALSE(hit.notes.count("future_fault"));
}

TEST(FaultInjection, PortfolioRacerFaultDegradesToTheSurvivors) {
  // Site "portfolio.racer" fires in run_racer before the solver is even
  // constructed: the first racer (lpt, list order) crashes, the race
  // continues on the survivors, and the crash is recorded as provenance.
  const Instance instance = fault_instance();
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas"};
  options.max_concurrent = 1;
  FaultInjector injector("portfolio.racer", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());
  EXPECT_TRUE(injector.fired());
  result.schedule.validate(instance);
  EXPECT_NE(result.winner, "lpt");
  const std::string& provenance = result.notes.at("racer.lpt");
  EXPECT_NE(provenance.find("failed: resource-limit"), std::string::npos)
      << provenance;
}

TEST(FaultInjection, PortfolioIncumbentFaultCrashesOnlyThePublisher) {
  // Site "portfolio.incumbent" fires inside IncumbentBoard::publish — the
  // first racer dies exactly at its publication point, after a full solve.
  // Survivors publish unharmed (the injector fires once) and win the race.
  const Instance instance = fault_instance();
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas"};
  options.max_concurrent = 1;
  FaultInjector injector("portfolio.incumbent", /*fire_at=*/1,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());
  EXPECT_TRUE(injector.fired());
  result.schedule.validate(instance);
  EXPECT_NE(result.winner, "lpt");
  EXPECT_NE(result.notes.at("racer.lpt").find("failed: resource-limit"),
            std::string::npos);
  // The survivors' publishes went through: the board saw real updates.
  EXPECT_GE(result.stats.at("incumbent_updates"), 1.0);
}

TEST(FaultInjection, InjectorFiresExactlyOnce) {
  CancellationToken token = CancellationToken::make();
  FaultInjector injector("dp.level", /*fire_at=*/1,
                         FaultInjector::Action::kCancel, token);
  FaultScope scope(injector);
  fault_hit("dp.level");
  fault_hit("dp.level");
  fault_hit("bisection.probe");  // different site: not counted
  EXPECT_EQ(injector.hits(), 2u);
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(token.cancel_requested());
}

// Sites self-register on first hit, so the registry reflects what THIS
// process actually executed (ctest runs every gtest case in its own
// process — nothing from the suites above carries over). The test first
// drives one clean pass through each instrumented subsystem, then asserts
// the registry enumerates every site those paths hit. This is what keeps
// the chaos harness's programmatically enumerated site list (fault_sites)
// from silently going stale when a new fault_hit site is added:
// arm-everything soaks arm what the binary actually has, not a
// hand-maintained copy.
TEST(FaultSiteRegistry, EnumeratesEverySiteTheSubsystemsHit) {
  const Instance instance = fault_instance();
  {
    // Parallel PTAS: bisection.probe, dp.level, pool.task.
    ThreadPoolExecutor executor(2);
    PtasOptions options;
    options.engine = DpEngine::kParallelScan;
    options.executor = &executor;
    PtasSolver(options).solve(instance).schedule.validate(instance);
  }
  {
    // Branch-and-bound: mip.node.
    const Instance small =
        generate_instance(InstanceFamily::kUniform1To100, 3, 10, 7, 0);
    PcmaxIpSolver(MipOptions{}).solve(small).schedule.validate(small);
  }
  {
    // Service front end: service.shard.dispatch, service.request,
    // service.cache, breaker.allow, service.future.
    SolveService service(ServiceOptions{});
    (void)service.submit(SolveRequest{instance}).get();
  }
  {
    // Portfolio race: portfolio.racer, portfolio.incumbent.
    PortfolioOptions options;
    options.racers = {"lpt", "multifit"};
    options.max_concurrent = 1;
    PortfolioSolver(options)
        .race(instance, SolveContext::unlimited())
        .schedule.validate(instance);
  }

  const std::vector<std::string> sites = fault_sites();
  for (const char* expected :
       {"dp.level", "bisection.probe", "pool.task", "mip.node",
        "service.request", "service.cache", "service.shard.dispatch",
        "service.future", "portfolio.racer", "portfolio.incumbent",
        "breaker.allow"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site '" << expected << "' missing from the registry";
  }
  // A ChaosInjector armed from the registry covers exactly these names.
  ChaosInjector chaos(ChaosOptions{}, sites);
  EXPECT_EQ(chaos.sites(), sites);
}

}  // namespace
}  // namespace pcmax
