// Failure-injection tests: resource budgets tripping mid-algorithm and
// hostile executors must surface as typed exceptions, never as corrupted
// results or hangs.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(FailureInjection, TableBudgetTripsDuringTheBisection) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.limits.max_table_entries = 4;  // guaranteed to trip at some probe
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

TEST(FailureInjection, ConfigBudgetTripsDuringTheBisection) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.limits.max_configs = 1;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

TEST(FailureInjection, BudgetTripsInsideSpeculativeProbesToo) {
  // The exception is raised on a probe thread and must be rethrown on the
  // caller, with the remaining probe threads joined (no leaks, no hang).
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 6, 40, 1, 0);
  PtasOptions options;
  options.speculation = 4;
  options.limits.max_table_entries = 4;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), ResourceLimitError);
}

/// An executor that fails a configurable number of calls in.
class FlakyExecutor final : public Executor {
 public:
  explicit FlakyExecutor(int fail_after) : remaining_(fail_after) {}

  [[nodiscard]] unsigned concurrency() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "flaky"; }

  void parallel_for_ranges(std::size_t n, const ThreadPool::RangeBody& body,
                           LoopSchedule, std::size_t) override {
    if (remaining_-- <= 0) throw std::runtime_error("injected executor failure");
    if (n > 0) body(0, n, 0);
  }

 private:
  int remaining_;
};

TEST(FailureInjection, ExecutorFailurePropagatesThroughTheParallelDp) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  FlakyExecutor executor(/*fail_after=*/3);
  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  PtasSolver solver(options);
  EXPECT_THROW((void)solver.solve(instance), std::runtime_error);
}

TEST(FailureInjection, HealthyExecutorAfterFailureStillWorks) {
  // A pool that has propagated an exception must remain usable — the PTAS
  // retried on the same executor succeeds.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  ThreadPoolExecutor executor(2);
  // Inject one failing region directly, then reuse the pool for a solve.
  EXPECT_THROW(executor.parallel_for_ranges(
                   1,
                   [](std::size_t, std::size_t, unsigned) {
                     throw std::runtime_error("boom");
                   },
                   LoopSchedule::kStatic, 1),
               std::runtime_error);

  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  const SolverResult result = PtasSolver(options).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, PtasSolver(PtasOptions{}).solve(instance).makespan);
}

TEST(FailureInjection, GenerousBudgetsDoNotTrip) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 2, 0);
  PtasOptions options;  // default budgets
  EXPECT_NO_THROW((void)PtasSolver(options).solve(instance));
}

}  // namespace
}  // namespace pcmax
