#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pcmax {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutputForZeroSeed) {
  // Reference value of splitmix64(0) from the public-domain reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, SeedsProduceDistinctStreams) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpChangesTheStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() == ~std::uint64_t{0});
  Xoshiro256StarStar rng(5);
  EXPECT_EQ(rng(), Xoshiro256StarStar(5).next());
}

TEST(UniformInt, StaysInClosedRange) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t x = uniform_int(rng, 3, 17);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 17);
  }
}

TEST(UniformInt, HitsBothEndpoints) {
  Xoshiro256StarStar rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000 && !(saw_lo && saw_hi); ++i) {
    const std::int64_t x = uniform_int(rng, 0, 9);
    saw_lo |= x == 0;
    saw_hi |= x == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformInt, SingletonRange) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_int(rng, 5, 5), 5);
}

TEST(UniformInt, NegativeRange) {
  Xoshiro256StarStar rng(19);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = uniform_int(rng, -10, -1);
    EXPECT_GE(x, -10);
    EXPECT_LE(x, -1);
  }
}

TEST(UniformInt, RangeSpanningZero) {
  Xoshiro256StarStar rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(uniform_int(rng, -2, 2));
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 appear
}

TEST(UniformInt, EmptyRangeThrows) {
  Xoshiro256StarStar rng(29);
  EXPECT_THROW((void)uniform_int(rng, 2, 1), InvalidArgumentError);
}

TEST(UniformInt, IsApproximatelyUniform) {
  // Chi-square-style sanity check on 10 buckets: with 100k draws each bucket
  // expects 10k; allow +-5% which is > 6 sigma.
  Xoshiro256StarStar rng(31);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++buckets[static_cast<std::size_t>(uniform_int(rng, 0, 9))];
  }
  for (int count : buckets) {
    EXPECT_GT(count, 9'500);
    EXPECT_LT(count, 10'500);
  }
}

TEST(UniformReal, StaysInHalfOpenUnitInterval) {
  Xoshiro256StarStar rng(37);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = uniform_real01(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.01);  // covers the interval reasonably
  EXPECT_GT(hi, 0.99);
}

}  // namespace
}  // namespace pcmax
