#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TablePrinter, RowCellCountMustMatchHeaders) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgumentError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), InvalidArgumentError);
}

TEST(TablePrinter, RequiresAtLeastOneColumn) {
  EXPECT_THROW(TablePrinter({}), InvalidArgumentError);
}

TEST(TablePrinter, CountsRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, CsvIsPlainWhenNoSpecialCharacters) {
  TablePrinter table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TablePrinter, CsvQuotesCommasQuotesAndNewlines) {
  TablePrinter table({"a"});
  table.add_row({"x,y"});
  table.add_row({"he said \"hi\""});
  table.add_row({"line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(TablePrinter, FmtFixedPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt(0.125, 3), "0.125");
}

}  // namespace
}  // namespace pcmax
