// Concurrency stress for the batch service: many submitter threads against
// few workers, a small queue (real backpressure), a small cache (real
// evictions), mixed budgets and cancels. Run under TSan via the `sanitize`
// label (PCMAX_SANITIZE=thread build).
//
// Invariants: every future resolves, no response is lost or duplicated,
// every schedule is valid for the instance that was submitted, counters add
// up, and destruction drains the queue instead of abandoning it.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/instance_gen.hpp"
#include "service/solve_service.hpp"

namespace pcmax {
namespace {

std::vector<Instance> instance_pool() {
  std::vector<Instance> pool;
  for (std::uint64_t index = 0; index < 6; ++index) {
    pool.push_back(generate_instance(InstanceFamily::kUniform1To10, 3, 12, 61,
                                     index));
  }
  // Permuted twins of the first three, so the pool dedups to 6 fingerprints.
  for (std::uint64_t index = 0; index < 3; ++index) {
    std::vector<Time> times(pool[index].times().begin(),
                            pool[index].times().end());
    std::rotate(times.begin(), times.begin() + 5, times.end());
    pool.emplace_back(pool[index].machines(), std::move(times));
  }
  return pool;
}

TEST(ServiceStress, ConcurrentSubmittersLoseNoResponses) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 12;
  ServiceOptions options;
  options.workers = 4;
  options.lanes = 2;  // fewer lanes than workers: second admission gate
  options.lane_width = 1;
  options.queue_capacity = 4;  // small: submitters block on backpressure
  options.cache_capacity = 4;  // small: real evictions under load
  options.epsilon = 0.5;
  const std::vector<Instance> pool = instance_pool();

  std::mutex mutex;
  std::vector<std::pair<std::size_t, SolveResponse>> collected;
  {
    SolveService service(options);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        std::vector<std::pair<std::size_t, SolveFuture>> local;
        for (int i = 0; i < kPerSubmitter; ++i) {
          const std::size_t pool_index =
              static_cast<std::size_t>(t * kPerSubmitter + i) % pool.size();
          SolveRequest request{pool[pool_index]};
          if (i % 5 == 4) request.epsilon = 0.8;  // a second request key
          local.emplace_back(pool_index,
                             service.submit(std::move(request)));
        }
        for (auto& [pool_index, future] : local) {
          SolveResponse response = future.get();
          response.schedule.validate(pool[pool_index]);
          std::lock_guard lock(mutex);
          collected.emplace_back(pool_index, std::move(response));
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();

    const ServiceStats stats = service.stats();
    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter;
    EXPECT_EQ(stats.requests, kTotal);
    // Every request probed the cache exactly once (the probe precedes the
    // admission decision), so hit + miss accounting must close.
    EXPECT_EQ(stats.cache.hits + stats.cache.misses, kTotal);
    EXPECT_LE(stats.queue_high_watermark, options.queue_capacity);
    EXPECT_GT(stats.cache.hits, 0u);
    std::uint64_t degraded = 0;
    for (const auto& [pool_index, response] : collected) {
      if (response.degraded) ++degraded;
    }
    EXPECT_EQ(stats.degraded, degraded);
  }

  ASSERT_EQ(collected.size(),
            static_cast<std::size_t>(kSubmitters) * kPerSubmitter);
  std::set<std::uint64_t> ids;
  for (const auto& [pool_index, response] : collected) {
    EXPECT_TRUE(ids.insert(response.id).second)
        << "duplicated response id " << response.id;
  }
  // The tiny queue makes the "queue-saturated" admission gate fire for real
  // under submitter pressure; degraded responses carry the fallback ladder's
  // answer, so only non-degraded responses (full canonical solves and cache
  // hits — pure functions of the problem) must agree per fingerprint.
  std::map<std::string, Time> by_key;
  for (const auto& [pool_index, response] : collected) {
    if (response.degraded) {
      EXPECT_EQ(response.degradation_reason, "queue-saturated");
      continue;
    }
    const auto [it, inserted] = by_key.emplace(response.fingerprint.to_hex(),
                                               response.makespan);
    if (!inserted) {
      EXPECT_EQ(it->second, response.makespan);
    }
  }
}

TEST(ServiceStress, DestructionDrainsEveryQueuedRequest) {
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.epsilon = 0.5;
  const std::vector<Instance> pool = instance_pool();
  std::vector<SolveFuture> futures;
  {
    SolveService service(options);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(service.submit(
          SolveRequest{pool[static_cast<std::size_t>(i) % pool.size()]}));
    }
    // Destroy immediately: close + drain, no abandoned futures.
  }
  for (auto& future : futures) {
    const SolveResponse response = future.get();
    EXPECT_GT(response.makespan, 0);
  }
}

TEST(ServiceStress, PreCancelledRequestsDegradeInsteadOfHanging) {
  ServiceOptions options;
  options.workers = 2;
  options.epsilon = 0.5;
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 15, 71, 0);
  SolveService service(options);
  SolveRequest request{instance};
  request.cancel = CancellationToken::make();
  request.cancel.request_cancel();
  const SolveResponse response = service.submit(std::move(request)).get();
  response.schedule.validate(instance);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degradation_reason, "cancelled");
  // A cancelled request's (degraded) result must not poison the cache.
  const SolveResponse healthy = service.submit(SolveRequest{instance}).get();
  EXPECT_FALSE(healthy.cache_hit);
  EXPECT_FALSE(healthy.degraded);
}

TEST(ServiceStress, TinyBudgetsAlwaysResolveWithValidSchedules) {
  // Deadline pressure from admission: some requests degrade ("deadline-near"
  // or mid-solve trips) but every future resolves with a complete schedule.
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4;
  options.epsilon = 0.3;
  options.deadline_near_ms = 1'000'000;  // any finite budget is "near"
  const std::vector<Instance> pool = instance_pool();
  SolveService service(options);
  std::vector<std::pair<std::size_t, SolveFuture>> futures;
  for (int i = 0; i < 12; ++i) {
    const std::size_t pool_index =
        static_cast<std::size_t>(i) % pool.size();
    SolveRequest request{pool[pool_index]};
    request.time_limit_ms = 5;  // finite => degrades at dispatch
    futures.emplace_back(pool_index, service.submit(std::move(request)));
  }
  int degraded = 0;
  for (auto& [pool_index, future] : futures) {
    const SolveResponse response = future.get();
    response.schedule.validate(pool[pool_index]);
    if (response.degraded) ++degraded;
    if (!response.cache_hit) {
      // Cache hits short-circuit before the admission check; everything
      // else must have degraded under this configuration.
      EXPECT_TRUE(response.degraded) << response.degradation_reason;
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(service.stats().degraded, static_cast<std::uint64_t>(degraded));
}

}  // namespace
}  // namespace pcmax
