// Property tests of the barrier-free DP's chunk-dependency graph
// (dp_chunk_graph.hpp) against exhaustive decode-based references on tiny
// state spaces:
//  * rank_lower_bound must equal a brute-force count of smaller-index
//    entries of the level (ranking is the correctness linchpin — the
//    dependency hull is derived from it);
//  * the graph's structural invariants (partition, monotone dependency
//    prefixes, successor suffixes) hold on random shapes;
//  * the transitive closure of the prefix dependencies covers EVERY DP
//    predecessor v - c (all non-zero c <= v, not just unit steps) of every
//    entry of every chunk — the property that makes a counter-driven sweep
//    read only completed entries under any execution order.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "algo/ptas/dp_chunk_graph.hpp"
#include "algo/ptas/state_space.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

std::vector<int> digits_of(const StateSpace& space, std::size_t index) {
  std::vector<int> digits(static_cast<std::size_t>(space.dims()));
  space.decode(index, digits);
  return digits;
}

/// Brute-force rank: number of level-`level` entries with a smaller flat
/// index than `index` (flat-index order == lexicographic order).
std::uint64_t brute_rank(const StateSpace& space, int level, std::size_t index) {
  std::uint64_t rank = 0;
  for (std::size_t u = 0; u < index; ++u) {
    if (space.level_of(u) == level) ++rank;
  }
  return rank;
}

std::vector<std::vector<int>> test_shapes() {
  return {{2, 2}, {3}, {1, 1, 1}, {2, 3, 1}, {4, 2}, {1, 2, 2, 1}};
}

TEST(ChunkGraph, RankLowerBoundMatchesExhaustiveCount) {
  for (const std::vector<int>& counts : test_shapes()) {
    const StateSpace space(counts, kBig);
    const LevelWalker walker(space);
    for (std::size_t v = 0; v < space.size(); ++v) {
      const std::vector<int> digits = digits_of(space, v);
      for (int level = 0; level <= space.max_level(); ++level) {
        EXPECT_EQ(walker.rank_lower_bound(level, digits),
                  brute_rank(space, level, v))
            << "index " << v << " level " << level;
      }
    }
  }
}

TEST(ChunkGraph, StructureInvariants) {
  Xoshiro256StarStar rng(0x6A5F);
  for (int round = 0; round < 20; ++round) {
    const int dims = static_cast<int>(uniform_int(rng, 1, 4));
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 4)));
    }
    const StateSpace space(counts, kBig);
    const LevelWalker walker(space);
    const auto target = static_cast<std::size_t>(uniform_int(rng, 1, 5));
    const DpChunkGraph graph = build_chunk_graph(space, target);
    EXPECT_EQ(graph.target, target);

    const int levels = space.max_level() + 1;
    ASSERT_EQ(graph.level_first.size(), static_cast<std::size_t>(levels) + 1);
    EXPECT_EQ(graph.level_first.front(), 0u);
    EXPECT_EQ(graph.level_first.back(), graph.chunks.size());

    std::uint64_t dep_total = 0;
    for (int l = 0; l < levels; ++l) {
      const std::uint32_t first = graph.level_first[static_cast<std::size_t>(l)];
      const std::uint32_t last =
          graph.level_first[static_cast<std::size_t>(l) + 1];
      const std::uint64_t width = walker.level_size(l);
      ASSERT_EQ(last - first, (width + target - 1) / target) << "level " << l;
      std::uint64_t expect_begin = 0;
      std::uint32_t prev_deps = 0;
      for (std::uint32_t g = first; g < last; ++g) {
        const DpChunk& chunk = graph.chunks[g];
        EXPECT_EQ(chunk.level, l);
        // Chunks partition the level's rank range contiguously.
        EXPECT_EQ(chunk.rank_begin, expect_begin);
        EXPECT_LT(chunk.rank_begin, chunk.rank_end);
        EXPECT_LE(chunk.rank_end - chunk.rank_begin, target);
        expect_begin = chunk.rank_end;
        // Dependency prefixes: zero exactly on level 0, nondecreasing
        // within a level, never exceeding the previous level's chunk count.
        if (l == 0) {
          EXPECT_EQ(chunk.dep_chunks, 0u);
        } else {
          EXPECT_GE(chunk.dep_chunks, 1u);
          EXPECT_GE(chunk.dep_chunks, prev_deps);
          EXPECT_LE(chunk.dep_chunks,
                    first - graph.level_first[static_cast<std::size_t>(l) - 1]);
        }
        prev_deps = chunk.dep_chunks;
        dep_total += chunk.dep_chunks;
        // Successor suffix == the next-level chunks whose prefix covers
        // this chunk, by direct scan.
        const std::uint32_t next_first = last;
        const std::uint32_t next_last =
            l + 1 < levels ? graph.level_first[static_cast<std::size_t>(l) + 2]
                           : static_cast<std::uint32_t>(graph.chunks.size());
        EXPECT_EQ(chunk.succ_end, next_last);
        const std::uint32_t c = g - first;
        for (std::uint32_t j = next_first; j < next_last; ++j) {
          const bool edge = graph.chunks[j].dep_chunks > c;
          EXPECT_EQ(j >= chunk.succ_begin, edge)
              << "level " << l << " chunk " << c << " -> " << j;
        }
      }
      EXPECT_EQ(expect_begin, width) << "level " << l;
    }
    EXPECT_EQ(graph.total_dependencies(), dep_total);
  }
}

TEST(ChunkGraph, DependencyClosureCoversAllPredecessors) {
  Xoshiro256StarStar rng(0xC105);
  for (int round = 0; round < 15; ++round) {
    const int dims = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 4)));
    }
    const StateSpace space(counts, kBig);
    const auto target = static_cast<std::size_t>(uniform_int(rng, 1, 4));
    const DpChunkGraph graph = build_chunk_graph(space, target);
    const auto nchunks = static_cast<std::uint32_t>(graph.chunks.size());

    // Chunk id of a flat index, via the brute-force rank.
    auto chunk_of = [&](std::size_t index) {
      const int level = space.level_of(index);
      const std::uint64_t rank = brute_rank(space, level, index);
      return graph.level_first[static_cast<std::size_t>(level)] +
             static_cast<std::uint32_t>(rank / target);
    };

    // done_before[j] = the chunks guaranteed complete before j STARTS: its
    // dependency prefix plus, transitively, everything those waited for.
    // (Ids ascend with level, so a forward pass is topological.)
    std::vector<std::vector<char>> done_before(
        nchunks, std::vector<char>(nchunks, 0));
    for (std::uint32_t j = 0; j < nchunks; ++j) {
      const DpChunk& chunk = graph.chunks[j];
      if (chunk.level == 0) continue;
      const std::uint32_t prev_first =
          graph.level_first[static_cast<std::size_t>(chunk.level) - 1];
      for (std::uint32_t p = prev_first; p < prev_first + chunk.dep_chunks;
           ++p) {
        done_before[j][p] = 1;
        for (std::uint32_t q = 0; q < nchunks; ++q) {
          if (done_before[p][q]) done_before[j][q] = 1;
        }
      }
    }

    // Every DP predecessor v - c (any non-zero c <= v, i.e. any config the
    // kernel could subtract) must live in a chunk complete before v's chunk
    // starts, whatever order runnable chunks execute in.
    for (std::size_t v = 1; v < space.size(); ++v) {
      const std::vector<int> digits = digits_of(space, v);
      const std::uint32_t owner = chunk_of(v);
      // Odometer over all sub-vectors c <= digits.
      std::vector<int> c(digits.size(), 0);
      for (;;) {
        std::size_t d = c.size();
        while (d-- > 0) {
          if (c[d] < digits[d]) {
            ++c[d];
            break;
          }
          c[d] = 0;
        }
        if (d == std::numeric_limits<std::size_t>::max()) break;  // wrapped
        std::vector<int> pred(digits.size());
        for (std::size_t i = 0; i < pred.size(); ++i) pred[i] = digits[i] - c[i];
        const std::uint32_t pred_chunk = chunk_of(space.encode(pred));
        ASSERT_TRUE(done_before[owner][pred_chunk])
            << "entry " << v << " predecessor chunk " << pred_chunk
            << " not complete before chunk " << owner << " (target " << target
            << ")";
      }
    }
  }
}

}  // namespace
}  // namespace pcmax
