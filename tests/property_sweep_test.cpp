// Parameterized property sweep: for every (machines, jobs, family, seed)
// combination, the certified optimum from the exact solver must sandwich and
// bound every approximation algorithm exactly as theory promises:
//
//   LB <= OPT <= UB                       (paper Eq. 1-2)
//   LS   <= (2 - 1/m) * OPT               (Graham 1966)
//   LPT  <= (4/3 - 1/(3m)) * OPT          (Graham 1969)
//   PTAS <= (1 + eps) * OPT               (Hochbaum-Shmoys; the paper)
//   PTAS(parallel) == PTAS(sequential)    (paper §III/IV)
#include <gtest/gtest.h>

#include <tuple>

#include "algo/annealing.hpp"
#include "algo/ldm.hpp"
#include "algo/list_scheduling.hpp"
#include "algo/local_search.hpp"
#include "algo/lpt.hpp"
#include "algo/multifit.hpp"
#include "algo/ptas/ptas.hpp"
#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/exact.hpp"
#include "exact/lower_bounds.hpp"
#include "exact/subset_dp.hpp"
#include "sim/event_sim.hpp"

namespace pcmax {
namespace {

using SweepParam = std::tuple<int, int, InstanceFamily, std::uint64_t>;

class PropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PropertySweep, AllTheoreticalGuaranteesHold) {
  const auto [machines, jobs, family, seed] = GetParam();
  const Instance instance = generate_instance(family, machines, jobs, seed, 0);

  const SolverResult exact = ExactSolver().solve(instance);
  ASSERT_TRUE(exact.proven_optimal) << "exact budget too small for sweep size";
  exact.schedule.validate(instance);
  const Time opt = exact.makespan;

  // Bounds sandwich the optimum.
  EXPECT_LE(makespan_lower_bound(instance), opt);
  EXPECT_GE(makespan_upper_bound(instance), opt);

  // LS: (2 - 1/m) * OPT, in exact integer arithmetic: m*LS <= (2m-1)*OPT.
  const SolverResult ls = ListSchedulingSolver().solve(instance);
  ls.schedule.validate(instance);
  EXPECT_LE(static_cast<std::int64_t>(machines) * ls.makespan,
            static_cast<std::int64_t>(2 * machines - 1) * opt);
  EXPECT_GE(ls.makespan, opt);

  // LPT: (4/3 - 1/(3m)) * OPT -> 3m*LPT <= (4m-1)*OPT.
  const SolverResult lpt = LptSolver().solve(instance);
  lpt.schedule.validate(instance);
  EXPECT_LE(static_cast<std::int64_t>(3 * machines) * lpt.makespan,
            static_cast<std::int64_t>(4 * machines - 1) * opt);
  EXPECT_GE(lpt.makespan, opt);

  // MULTIFIT: 13/11 + 2^-k with k = 10 iterations.
  const SolverResult multifit = MultifitSolver().solve(instance);
  multifit.schedule.validate(instance);
  EXPECT_LE(static_cast<double>(multifit.makespan),
            (13.0 / 11.0 + 0.001) * static_cast<double>(opt));

  // Sequential PTAS at the paper's eps = 0.3.
  PtasOptions seq_options;
  PtasSolver sequential(seq_options);
  const SolverResult ptas = sequential.solve(instance);
  ptas.schedule.validate(instance);
  EXPECT_LE(static_cast<double>(ptas.makespan), 1.3 * static_cast<double>(opt));
  EXPECT_GE(ptas.makespan, opt);

  // Parallel PTAS: identical makespan on 2 threads, bucketed engine.
  ThreadPoolExecutor executor(2);
  PtasOptions par_options;
  par_options.engine = DpEngine::kParallelBucketed;
  par_options.executor = &executor;
  const SolverResult parallel = PtasSolver(par_options).solve(instance);
  parallel.schedule.validate(instance);
  EXPECT_EQ(parallel.makespan, ptas.makespan);

  // Paper-faithful per-entry kernel: same algorithm, same result.
  PtasOptions faithful_options;
  faithful_options.kernel = DpKernel::kPerEntryEnum;
  EXPECT_EQ(PtasSolver(faithful_options).solve(instance).makespan, ptas.makespan);

  // The extra heuristics: valid, never below the optimum, and LDM/SA/local
  // search never lose to plain LPT's guarantee envelope.
  const SolverResult ldm = LdmSolver().solve(instance);
  ldm.schedule.validate(instance);
  EXPECT_GE(ldm.makespan, opt);

  const SolverResult annealed = AnnealingSolver().solve(instance);
  annealed.schedule.validate(instance);
  EXPECT_GE(annealed.makespan, opt);
  EXPECT_LE(annealed.makespan, lpt.makespan);

  LptSolver lpt_inner;
  const SolverResult polished = LocalSearchSolver(lpt_inner).solve(instance);
  polished.schedule.validate(instance);
  EXPECT_GE(polished.makespan, opt);
  EXPECT_LE(polished.makespan, lpt.makespan);

  // Improved lower bounds stay below the optimum and above Eq. 1.
  EXPECT_LE(improved_lower_bound(instance), opt);
  EXPECT_GE(improved_lower_bound(instance), makespan_lower_bound(instance));

  // The discrete-event simulator reproduces every solver's makespan.
  EXPECT_EQ(simulate_schedule(instance, ptas.schedule).makespan, ptas.makespan);
  EXPECT_EQ(simulate_schedule(instance, exact.schedule).makespan, exact.makespan);

  // Subset-sum DP cross-check where it applies (budget raised for the
  // U(95,105) family, whose totals square past the default).
  if (machines <= 3) {
    EXPECT_EQ(SubsetDpSolver(Time{4'000'000}).solve(instance).makespan, opt);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [machines, jobs, family, seed] = info.param;
  std::string family_tag;
  switch (family) {
    case InstanceFamily::kUniform1To100: family_tag = "U1to100"; break;
    case InstanceFamily::kUniform1To10: family_tag = "U1to10"; break;
    case InstanceFamily::kUniform1To10N: family_tag = "U1to10n"; break;
    case InstanceFamily::kUniform1To2M1: family_tag = "U1to2m1"; break;
    case InstanceFamily::kUniformMTo2M1: family_tag = "Umto2m1"; break;
    case InstanceFamily::kUniform95To105: family_tag = "U95to105"; break;
  }
  return "m" + std::to_string(machines) + "_n" + std::to_string(jobs) + "_" +
         family_tag + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, PropertySweep,
    ::testing::Combine(::testing::Values(2, 3, 5),          // machines
                       ::testing::Values(8, 13),            // jobs
                       ::testing::ValuesIn(all_families()),  // distribution
                       ::testing::Values<std::uint64_t>(1, 2)),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    MediumInstances, PropertySweep,
    ::testing::Combine(::testing::Values(4), ::testing::Values(24),
                       ::testing::Values(InstanceFamily::kUniform1To10,
                                         InstanceFamily::kUniform95To105,
                                         InstanceFamily::kUniformMTo2M1),
                       ::testing::Values<std::uint64_t>(3)),
    sweep_name);

}  // namespace
}  // namespace pcmax
