#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

const Instance kInstance(3, {4, 7, 2, 5, 6});  // total 24

Schedule complete_schedule() {
  Schedule s(3);
  s.assign(0, 0);
  s.assign(0, 2);
  s.assign(1, 1);
  s.assign(2, 3);
  s.assign(2, 4);
  return s;
}

TEST(Schedule, TracksAssignmentsAndLoads) {
  const Schedule s = complete_schedule();
  EXPECT_EQ(s.machines(), 3);
  EXPECT_EQ(s.assigned_jobs(), 5);
  EXPECT_EQ(s.load(kInstance, 0), 6);
  EXPECT_EQ(s.load(kInstance, 1), 7);
  EXPECT_EQ(s.load(kInstance, 2), 11);
  EXPECT_EQ(s.makespan(kInstance), 11);
  EXPECT_EQ(s.loads(kInstance), (std::vector<Time>{6, 7, 11}));
  EXPECT_EQ(s.jobs_on(0), (std::vector<int>{0, 2}));
}

TEST(Schedule, ValidatesCompletePartition) {
  const Schedule s = complete_schedule();
  EXPECT_NO_THROW(s.validate(kInstance));
  EXPECT_TRUE(s.is_valid(kInstance));
}

TEST(Schedule, DetectsUnassignedJob) {
  Schedule s(3);
  s.assign(0, 0);
  s.assign(1, 1);
  s.assign(2, 2);
  s.assign(0, 3);  // job 4 missing
  EXPECT_THROW(s.validate(kInstance), InvalidArgumentError);
  EXPECT_FALSE(s.is_valid(kInstance));
}

TEST(Schedule, DetectsDuplicateAssignment) {
  Schedule s = complete_schedule();
  s.assign(1, 0);  // job 0 twice
  EXPECT_THROW(s.validate(kInstance), InvalidArgumentError);
}

TEST(Schedule, DetectsOutOfRangeJob) {
  Schedule s = complete_schedule();
  s.assign(0, 99);
  EXPECT_THROW(s.validate(kInstance), InvalidArgumentError);
}

TEST(Schedule, DetectsMachineCountMismatch) {
  Schedule s(2);
  s.assign(0, 0);
  EXPECT_THROW(s.validate(kInstance), InvalidArgumentError);
}

TEST(Schedule, AssignRejectsBadIndices) {
  Schedule s(2);
  EXPECT_THROW(s.assign(-1, 0), InvalidArgumentError);
  EXPECT_THROW(s.assign(2, 0), InvalidArgumentError);
  EXPECT_THROW(s.assign(0, -5), InvalidArgumentError);
}

TEST(Schedule, RejectsZeroMachines) {
  EXPECT_THROW(Schedule(0), InvalidArgumentError);
}

TEST(Schedule, FromAssignmentBuildsEquivalentSchedule) {
  const std::vector<int> assignment{0, 1, 0, 2, 2};
  const Schedule s = Schedule::from_assignment(3, assignment);
  EXPECT_TRUE(s.is_valid(kInstance));
  EXPECT_EQ(s.assignment(kInstance), assignment);
}

TEST(Schedule, AssignmentRoundTrips) {
  const Schedule s = complete_schedule();
  const std::vector<int> assignment = s.assignment(kInstance);
  const Schedule rebuilt = Schedule::from_assignment(3, assignment);
  EXPECT_EQ(rebuilt.makespan(kInstance), s.makespan(kInstance));
  EXPECT_EQ(rebuilt.assignment(kInstance), assignment);
}

TEST(Schedule, AssignmentRequiresCompleteSchedule) {
  Schedule s(3);
  s.assign(0, 0);
  EXPECT_THROW((void)s.assignment(kInstance), InvalidArgumentError);
}

TEST(Schedule, ToStringShowsLoadsAndMakespan) {
  const Schedule s = complete_schedule();
  const std::string text = s.to_string(kInstance);
  EXPECT_NE(text.find("machine 0 (load 6)"), std::string::npos);
  EXPECT_NE(text.find("makespan: 11"), std::string::npos);
  EXPECT_NE(text.find("j1[7]"), std::string::npos);
}

TEST(Schedule, EmptyMachinesHaveZeroLoad) {
  Schedule s(4);
  EXPECT_EQ(s.load(Instance(4, {1}), 3), 0);
  EXPECT_EQ(s.makespan(Instance(4, {1})), 0);
}

}  // namespace
}  // namespace pcmax
