// The v1 -> v2 back-compat shims: every deprecated per-struct cancel /
// time-limit field must keep WORKING through the legacy solve(instance)
// entry point, and must stamp its one-time deprecation note — exactly once
// per process, under exactly its documented field name. The v2
// solve(instance, context) path must stay silent. docs/api.md records the
// removal schedule these assertions back.
#include <gtest/gtest.h>

#include <string>

#include "algo/ptas/ptas.hpp"
#include "core/instance.hpp"
#include "core/resilient_solver.hpp"
#include "core/solve_context.hpp"
#include "core/solver.hpp"
#include "exact/exact.hpp"
#include "mip/pcmax_ip.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

Instance tiny_instance() { return Instance(2, {3, 5, 4, 6, 2}); }

int deprecation_note_count(const SolverResult& result) {
  int count = 0;
  for (const auto& [key, value] : result.notes) {
    if (key.rfind("deprecation.", 0) == 0) ++count;
  }
  return count;
}

void expect_note(const SolverResult& result, const std::string& field,
                 const std::string& replacement) {
  const std::string key = "deprecation." + field;
  ASSERT_TRUE(result.notes.count(key)) << "missing " << key;
  const std::string& message = result.notes.at(key);
  EXPECT_NE(message.find(field), std::string::npos) << message;
  EXPECT_NE(message.find(replacement), std::string::npos) << message;
}

TEST(Deprecation, PtasOptionsCancelStampsExactlyOnce) {
  reset_deprecation_notes_for_testing();
  PtasOptions options;
  options.cancel = CancellationToken::make();  // valid, never cancelled
  const SolverResult first = PtasSolver(options).solve(tiny_instance());
  expect_note(first, "PtasOptions.cancel", "SolveContext.cancel");
  const SolverResult second = PtasSolver(options).solve(tiny_instance());
  EXPECT_EQ(deprecation_note_count(second), 0);
}

TEST(Deprecation, DpLimitsCancelRidesThePtasShim) {
  // The limits-level token is the OTHER legacy route into the same shim;
  // it stamps under the same field name (one warning per mechanism, not
  // per struct path).
  reset_deprecation_notes_for_testing();
  PtasOptions options;
  options.limits.cancel = CancellationToken::make();
  const SolverResult first = PtasSolver(options).solve(tiny_instance());
  expect_note(first, "PtasOptions.cancel", "SolveContext.cancel");
  const SolverResult second = PtasSolver(options).solve(tiny_instance());
  EXPECT_EQ(deprecation_note_count(second), 0);
}

TEST(Deprecation, MipOptionsCancelStampsExactlyOnce) {
  reset_deprecation_notes_for_testing();
  MipOptions options;
  options.cancel = CancellationToken::make();
  const SolverResult first = PcmaxIpSolver(options).solve(tiny_instance());
  expect_note(first, "MipOptions.cancel", "SolveContext.cancel");
  const SolverResult second = PcmaxIpSolver(options).solve(tiny_instance());
  EXPECT_EQ(deprecation_note_count(second), 0);
}

TEST(Deprecation, ExactProbeLimitsCancelStampsExactlyOnce) {
  reset_deprecation_notes_for_testing();
  ExactSolverOptions options;
  options.probe_limits.cancel = CancellationToken::make();
  const SolverResult first = ExactSolver(options).solve(tiny_instance());
  expect_note(first, "ExactSolverOptions.probe_limits.cancel",
              "SolveContext.cancel");
  const SolverResult second = ExactSolver(options).solve(tiny_instance());
  EXPECT_EQ(deprecation_note_count(second), 0);
}

TEST(Deprecation, ResilientCancelAndTimeLimitStampExactlyOnceEach) {
  reset_deprecation_notes_for_testing();
  ResilientOptions options;
  options.cancel = CancellationToken::make();
  options.time_limit_ms = 3'600'000;  // an hour: never trips
  const SolverResult first = ResilientSolver(options).solve(tiny_instance());
  expect_note(first, "ResilientOptions.cancel", "SolveContext.cancel");
  expect_note(first, "ResilientOptions.time_limit_ms", "SolveContext.deadline");
  EXPECT_EQ(deprecation_note_count(first), 2);
  const SolverResult second = ResilientSolver(options).solve(tiny_instance());
  EXPECT_EQ(deprecation_note_count(second), 0);
}

TEST(Deprecation, ContextPathStampsNothing) {
  reset_deprecation_notes_for_testing();
  const SolveContext context =
      SolveContext::with_token(CancellationToken::make());
  EXPECT_EQ(deprecation_note_count(
                PtasSolver(PtasOptions{}).solve(tiny_instance(), context)),
            0);
  EXPECT_EQ(deprecation_note_count(
                PcmaxIpSolver(MipOptions{}).solve(tiny_instance(), context)),
            0);
  EXPECT_EQ(deprecation_note_count(ExactSolver(ExactSolverOptions{})
                                       .solve(tiny_instance(), context)),
            0);
  EXPECT_EQ(deprecation_note_count(ResilientSolver(ResilientOptions{})
                                       .solve(tiny_instance(), context)),
            0);
}

TEST(Deprecation, LegacyFieldsStillFunction) {
  // Deprecated is not broken: a pre-cancelled legacy token must still stop
  // the PTAS, and a legacy resilient time limit of 0 must mean unlimited.
  reset_deprecation_notes_for_testing();
  PtasOptions cancelled;
  cancelled.cancel = CancellationToken::make();
  cancelled.cancel.request_cancel();
  EXPECT_THROW((void)PtasSolver(cancelled).solve(tiny_instance()),
               CancelledError);
  ResilientOptions unlimited;
  unlimited.time_limit_ms = 0;
  const SolverResult result =
      ResilientSolver(unlimited).solve(tiny_instance());
  result.schedule.validate(tiny_instance());
  EXPECT_FALSE(result.notes.count("deprecation.ResilientOptions.time_limit_ms"));
}

}  // namespace
}  // namespace pcmax
