// Unit tests for the circuit breaker (src/core/breaker.hpp): the
// closed -> open -> half-open -> closed lifecycle, probe management, and
// deterministic replay of whole trip/recover sequences.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/breaker.hpp"
#include "obs/metrics.hpp"

namespace pcmax {
namespace {

BreakerOptions small_options() {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.open_rejects = 4;
  return options;
}

TEST(CircuitBreaker, StartsClosedAndAllows) {
  CircuitBreaker breaker(small_options());
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow("ptas"));
  EXPECT_TRUE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").rejects, 0u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(small_options());
  breaker.on_failure("ptas");
  breaker.on_failure("ptas");
  breaker.on_success("ptas");  // streak broken at 2 of 3
  breaker.on_failure("ptas");
  breaker.on_failure("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kClosed);
  breaker.on_failure("ptas");  // third consecutive: trips
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats("ptas").trips, 1u);
}

TEST(CircuitBreaker, ConsecutiveFailuresTripAndOpenRejects) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kOpen);
  // The cooldown is counted in rejected attempts, not wall time.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_FALSE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").rejects, 4u);
  // Cooldown served: the state moved to half-open and the NEXT attempt is
  // admitted as the probe.
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").probes, 1u);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  for (int i = 0; i < 4; ++i) (void)breaker.allow("ptas");
  ASSERT_TRUE(breaker.allow("ptas"));  // the probe
  // While the probe is in flight, every other attempt is rejected.
  EXPECT_FALSE(breaker.allow("ptas"));
  EXPECT_FALSE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").probes, 1u);
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  for (int i = 0; i < 4; ++i) (void)breaker.allow("ptas");
  ASSERT_TRUE(breaker.allow("ptas"));
  breaker.on_success("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats("ptas").closes, 1u);
  EXPECT_TRUE(breaker.allow("ptas"));
}

TEST(CircuitBreaker, ProbeFailureReopensAndCooldownRestarts) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  for (int i = 0; i < 4; ++i) (void)breaker.allow("ptas");
  ASSERT_TRUE(breaker.allow("ptas"));
  breaker.on_failure("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats("ptas").trips, 2u);
  // A fresh full cooldown must be served before the next probe.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.allow("ptas"));
  EXPECT_TRUE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").probes, 2u);
}

TEST(CircuitBreaker, AbandonReleasesTheProbeSlot) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  for (int i = 0; i < 4; ++i) (void)breaker.allow("ptas");
  ASSERT_TRUE(breaker.allow("ptas"));
  // The probe ended without a verdict (e.g. the caller cancelled): a later
  // attempt must still be able to probe — the slot must not wedge.
  breaker.on_abandon("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stats("ptas").abandons, 1u);
  EXPECT_TRUE(breaker.allow("ptas"));
  EXPECT_EQ(breaker.stats("ptas").probes, 2u);
}

TEST(CircuitBreaker, KeysAreIndependent) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kOpen);
  EXPECT_EQ(breaker.state("portfolio"), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow("portfolio"));
  const std::vector<std::string> keys = breaker.keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"portfolio", "ptas"}));
}

TEST(CircuitBreaker, LateFailureWhileOpenDoesNotDoubleTrip) {
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  ASSERT_EQ(breaker.state("ptas"), BreakerState::kOpen);
  // An attempt admitted before the trip reports its failure late.
  breaker.on_failure("ptas");
  EXPECT_EQ(breaker.stats("ptas").trips, 1u);
  EXPECT_EQ(breaker.state("ptas"), BreakerState::kOpen);
}

// The acceptance property behind count-based cooldowns: an identical
// call sequence produces an identical state/stat trajectory, run to run.
TEST(CircuitBreaker, WholeSequencesReplayDeterministically) {
  const auto run = [] {
    CircuitBreaker breaker(small_options());
    std::vector<std::string> trace;
    const auto step = [&](const std::string& what) {
      if (what == "f") breaker.on_failure("ptas");
      else if (what == "s") breaker.on_success("ptas");
      else trace.push_back(breaker.allow("ptas") ? "admit" : "reject");
      trace.push_back(breaker_state_name(breaker.state("ptas")));
    };
    for (const char* what :
         {"f", "f", "a", "f", "a", "a", "a", "a", "a", "f", "a", "a", "a",
          "a", "a", "s", "a", "f", "f", "f", "a"}) {
      step(what);
    }
    const BreakerKeyStats stats = breaker.stats("ptas");
    trace.push_back("trips=" + std::to_string(stats.trips));
    trace.push_back("rejects=" + std::to_string(stats.rejects));
    trace.push_back("probes=" + std::to_string(stats.probes));
    trace.push_back("closes=" + std::to_string(stats.closes));
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(CircuitBreaker, TransitionsMirrorIntoMetrics) {
  obs::Metrics metrics(1);
  obs::MetricsScope scope(metrics);
  CircuitBreaker breaker(small_options());
  for (int i = 0; i < 3; ++i) breaker.on_failure("ptas");
  for (int i = 0; i < 4; ++i) (void)breaker.allow("ptas");
  ASSERT_TRUE(breaker.allow("ptas"));
  breaker.on_success("ptas");
  EXPECT_EQ(metrics.counter_total(obs::Counter::kBreakerTrips), 1u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kBreakerOpenRejects), 4u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kBreakerProbes), 1u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kBreakerCloses), 1u);
}

TEST(CircuitBreaker, RejectsInvalidOptions) {
  BreakerOptions zero_threshold;
  zero_threshold.failure_threshold = 0;
  EXPECT_ANY_THROW(CircuitBreaker{zero_threshold});
  BreakerOptions zero_cooldown;
  zero_cooldown.open_rejects = 0;
  EXPECT_ANY_THROW(CircuitBreaker{zero_cooldown});
}

}  // namespace
}  // namespace pcmax
