#include "core/instance.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(Instance, StoresJobsAndMachines) {
  const Instance instance(3, {5, 2, 9, 1});
  EXPECT_EQ(instance.machines(), 3);
  EXPECT_EQ(instance.jobs(), 4);
  EXPECT_EQ(instance.time(0), 5);
  EXPECT_EQ(instance.time(3), 1);
  EXPECT_EQ(instance.total_time(), 17);
  EXPECT_EQ(instance.max_time(), 9);
}

TEST(Instance, TimesSpanMatchesInput) {
  const Instance instance(1, {4, 4, 4});
  const auto times = instance.times();
  ASSERT_EQ(times.size(), 3u);
  for (Time t : times) EXPECT_EQ(t, 4);
}

TEST(Instance, RejectsInvalidInputs) {
  EXPECT_THROW(Instance(0, {1}), InvalidArgumentError);
  EXPECT_THROW(Instance(-1, {1}), InvalidArgumentError);
  EXPECT_THROW(Instance(1, {}), InvalidArgumentError);
  EXPECT_THROW(Instance(1, {0}), InvalidArgumentError);
  EXPECT_THROW(Instance(1, {5, -2}), InvalidArgumentError);
}

TEST(Instance, RejectsTotalTimeOverflow) {
  const Time huge = std::numeric_limits<Time>::max() / 2 + 1;
  EXPECT_THROW(Instance(1, {huge, huge}), InvalidArgumentError);
}

TEST(Instance, ToStringAndParseRoundTrip) {
  const Instance original(4, {10, 20, 30});
  const Instance parsed = Instance::parse(original.to_string());
  EXPECT_EQ(parsed, original);
}

TEST(Instance, ParseAcceptsCanonicalFormat) {
  const Instance instance = Instance::parse("2 3 7 8 9");
  EXPECT_EQ(instance.machines(), 2);
  EXPECT_EQ(instance.jobs(), 3);
  EXPECT_EQ(instance.time(2), 9);
}

TEST(Instance, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Instance::parse(""), InvalidArgumentError);
  EXPECT_THROW((void)Instance::parse("2"), InvalidArgumentError);
  EXPECT_THROW((void)Instance::parse("2 3 1 2"), InvalidArgumentError);      // short
  EXPECT_THROW((void)Instance::parse("2 2 1 2 3"), InvalidArgumentError);    // long
  EXPECT_THROW((void)Instance::parse("2 0"), InvalidArgumentError);          // no jobs
  EXPECT_THROW((void)Instance::parse("x y z"), InvalidArgumentError);        // junk
  EXPECT_THROW((void)Instance::parse("0 1 5"), InvalidArgumentError);        // m = 0
}

TEST(Instance, VersionedWireFormatRoundTrips) {
  // Classic instances stay on the legacy "m n t..." line forever; variant
  // instances serialize to the self-describing pcmax.instance.v2 form and
  // parse() accepts both. (Golden strings pinned in core_variant_test.)
  EXPECT_EQ(Instance(2, {3, 4}).to_string(), "2 2 3 4");
  const Instance capped = Instance::capacity_restricted(3, {5, 6, 7}, 2);
  const Instance incremental = Instance::incremental(2, {8, 9});
  EXPECT_EQ(Instance::parse(capped.to_string()), capped);
  EXPECT_EQ(Instance::parse(incremental.to_string()), incremental);
  // A v2 line that spells out "classic" parses to a plain instance too.
  EXPECT_EQ(Instance::parse("pcmax.instance.v2 classic 2 2 3 4"),
            Instance(2, {3, 4}));
  EXPECT_THROW((void)Instance::parse("pcmax.instance.v3 classic 2 2 3 4"),
               InvalidArgumentError);
}

TEST(Instance, StreamOutputMatchesToString) {
  const Instance instance(2, {3, 4});
  std::ostringstream os;
  os << instance;
  EXPECT_EQ(os.str(), instance.to_string());
  EXPECT_EQ(os.str(), "2 2 3 4");
}

TEST(Instance, EqualityComparesMachinesAndTimes) {
  EXPECT_EQ(Instance(2, {1, 2}), Instance(2, {1, 2}));
  EXPECT_NE(Instance(2, {1, 2}), Instance(3, {1, 2}));
  EXPECT_NE(Instance(2, {1, 2}), Instance(2, {2, 1}));
}

}  // namespace
}  // namespace pcmax
