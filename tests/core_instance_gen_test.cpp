#include "core/instance_gen.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(InstanceGen, FamilyNamesMatchThePaperNotation) {
  EXPECT_EQ(family_name(InstanceFamily::kUniform1To100), "U(1,100)");
  EXPECT_EQ(family_name(InstanceFamily::kUniform1To10), "U(1,10)");
  EXPECT_EQ(family_name(InstanceFamily::kUniform1To10N), "U(1,10n)");
  EXPECT_EQ(family_name(InstanceFamily::kUniform1To2M1), "U(1,2m-1)");
  EXPECT_EQ(family_name(InstanceFamily::kUniformMTo2M1), "U(m,2m-1)");
  EXPECT_EQ(family_name(InstanceFamily::kUniform95To105), "U(95,105)");
}

TEST(InstanceGen, AllFamiliesHasSixEntries) {
  EXPECT_EQ(all_families().size(), 6u);
}

TEST(InstanceGen, SpeedupFamiliesMatchFigureOrder) {
  const auto families = speedup_families();
  ASSERT_EQ(families.size(), 4u);
  EXPECT_EQ(families[0], InstanceFamily::kUniform1To2M1);
  EXPECT_EQ(families[1], InstanceFamily::kUniform1To100);
  EXPECT_EQ(families[2], InstanceFamily::kUniform1To10);
  EXPECT_EQ(families[3], InstanceFamily::kUniform1To10N);
}

TEST(InstanceGen, RangesDependOnMachinesAndJobsAsSpecified) {
  EXPECT_EQ(family_range(InstanceFamily::kUniform1To100, 10, 50).lo, 1);
  EXPECT_EQ(family_range(InstanceFamily::kUniform1To100, 10, 50).hi, 100);
  EXPECT_EQ(family_range(InstanceFamily::kUniform1To10N, 10, 50).hi, 500);
  EXPECT_EQ(family_range(InstanceFamily::kUniform1To2M1, 10, 50).hi, 19);
  EXPECT_EQ(family_range(InstanceFamily::kUniformMTo2M1, 10, 50).lo, 10);
  EXPECT_EQ(family_range(InstanceFamily::kUniformMTo2M1, 10, 50).hi, 19);
  EXPECT_EQ(family_range(InstanceFamily::kUniform95To105, 10, 50).lo, 95);
  EXPECT_EQ(family_range(InstanceFamily::kUniform95To105, 10, 50).hi, 105);
}

TEST(InstanceGen, DegenerateSingleMachineRangeStaysValid) {
  const TimeRange range = family_range(InstanceFamily::kUniform1To2M1, 1, 5);
  EXPECT_EQ(range.lo, 1);
  EXPECT_EQ(range.hi, 1);
}

TEST(InstanceGen, GeneratedTimesStayInFamilyRange) {
  for (const InstanceFamily family : all_families()) {
    const int m = 7;
    const int n = 40;
    const TimeRange range = family_range(family, m, n);
    const Instance instance = generate_instance(family, m, n, 99, 0);
    EXPECT_EQ(instance.machines(), m);
    EXPECT_EQ(instance.jobs(), n);
    for (Time t : instance.times()) {
      EXPECT_GE(t, range.lo) << family_name(family);
      EXPECT_LE(t, range.hi) << family_name(family);
    }
  }
}

TEST(InstanceGen, SameCoordinatesReproduceTheSameInstance) {
  const Instance a = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 7, 3);
  const Instance b = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 7, 3);
  EXPECT_EQ(a, b);
}

TEST(InstanceGen, DifferentIndicesProduceDifferentInstances) {
  const Instance a = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 7, 0);
  const Instance b = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 7, 1);
  EXPECT_NE(a, b);
}

TEST(InstanceGen, DifferentSeedsProduceDifferentInstances) {
  const Instance a = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 1, 0);
  const Instance b = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 2, 0);
  EXPECT_NE(a, b);
}

TEST(InstanceGen, DifferentFamiliesProduceDifferentInstances) {
  // Same seed/size, different family: even with identical ranges the streams
  // are decorrelated, and here the ranges differ anyway.
  const Instance a = generate_instance(InstanceFamily::kUniform1To100, 5, 20, 1, 0);
  const Instance b = generate_instance(InstanceFamily::kUniform95To105, 5, 20, 1, 0);
  EXPECT_NE(a, b);
}

TEST(InstanceGen, GenerateInstancesProducesIndexedSequence) {
  const auto batch = generate_instances(InstanceFamily::kUniform1To10, 3, 8, 5, 4);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i],
              generate_instance(InstanceFamily::kUniform1To10, 3, 8, 5, i));
  }
}

TEST(InstanceGen, RejectsBadArguments) {
  EXPECT_THROW((void)family_range(InstanceFamily::kUniform1To10, 0, 5),
               InvalidArgumentError);
  EXPECT_THROW((void)family_range(InstanceFamily::kUniform1To10, 5, 0),
               InvalidArgumentError);
  EXPECT_THROW((void)generate_instances(InstanceFamily::kUniform1To10, 3, 8, 5, -1),
               InvalidArgumentError);
}

TEST(InstanceGen, UsesTheFullRangeEventually) {
  // With 400 draws from U(1,10) every value should appear.
  const Instance instance = generate_instance(InstanceFamily::kUniform1To10, 2,
                                              400, 123, 0);
  std::vector<bool> seen(11, false);
  for (Time t : instance.times()) seen[static_cast<std::size_t>(t)] = true;
  for (int v = 1; v <= 10; ++v) EXPECT_TRUE(seen[static_cast<std::size_t>(v)]) << v;
}

}  // namespace
}  // namespace pcmax
