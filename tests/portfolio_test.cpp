// Portfolio racing engine (core/portfolio) tests: deterministic sequential
// races, standalone reproduction of the winning racer from its recorded
// start bound, certification-driven cancellation, degradation provenance,
// and a cancellation-storm stress (label `sanitize`).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/instance_gen.hpp"
#include "core/portfolio.hpp"
#include "core/solver_registry.hpp"
#include "exact/lower_bounds.hpp"
#include "parallel/executor.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

Instance paper_instance(int machines = 10, int jobs = 50,
                        std::uint64_t seed = 42) {
  return generate_instance(InstanceFamily::kUniform1To100, machines, jobs,
                           seed, 0);
}

const RacerReport& report_of(const PortfolioResult& result,
                             const std::string& name) {
  for (const RacerReport& report : result.racers) {
    if (report.name == name) return report;
  }
  throw std::logic_error("no report for racer " + name);
}

TEST(SolverRegistry, GlobalKnowsEveryBuiltin) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const char* name : {"lpt", "ls", "ldm", "multifit", "ptas",
                           "parallel-ptas", "spmd-ptas", "subset-dp", "ip",
                           "milp", "resilient"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  SolverBuild build;
  const auto solver = registry.create("lpt", build);
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->solve(paper_instance()).schedule.machines(), 10);
}

TEST(SolverRegistry, UnknownNameListsWhatIsRegistered) {
  try {
    (void)SolverRegistry::global().create("bogus", SolverBuild{});
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos) << message;
    EXPECT_NE(message.find("multifit"), std::string::npos) << message;
  }
}

TEST(SolverRegistry, PrivateRegistriesExtendWithoutTouchingTheGlobal) {
  SolverRegistry registry;
  registry.register_solver("lpt-twin", [](const SolverBuild& build) {
    return SolverRegistry::global().create("lpt", build);
  });
  EXPECT_TRUE(registry.contains("lpt-twin"));
  EXPECT_FALSE(SolverRegistry::global().contains("lpt-twin"));
  EXPECT_THROW(registry.register_solver("lpt-twin", nullptr),
               InvalidArgumentError);
}

TEST(Portfolio, SelectRacersAdaptsToInstanceShape) {
  PortfolioOptions options;
  // Large instance, no executor: the always-on trio only.
  const std::vector<std::string> large =
      select_racers(paper_instance(10, 50), options);
  EXPECT_EQ(large, (std::vector<std::string>{"lpt", "multifit", "ptas"}));

  // An executor adds the parallel PTAS lane.
  SequentialExecutor executor;
  options.build.executor = &executor;
  const std::vector<std::string> with_executor =
      select_racers(paper_instance(10, 50), options);
  EXPECT_NE(std::find(with_executor.begin(), with_executor.end(),
                      "parallel-ptas"),
            with_executor.end());

  // Small instances enlist the certifying exact racers.
  options.build.executor = nullptr;
  const std::vector<std::string> small =
      select_racers(paper_instance(2, 8), options);
  EXPECT_NE(std::find(small.begin(), small.end(), "milp"), small.end());
  EXPECT_NE(std::find(small.begin(), small.end(), "subset-dp"), small.end());
}

TEST(Portfolio, SequentialRaceIsDeterministic) {
  const Instance instance = paper_instance();
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas"};
  options.max_concurrent = 1;  // deterministic mode
  PortfolioSolver solver(options);

  const PortfolioResult first = solver.race(instance, SolveContext::unlimited());
  const PortfolioResult second = solver.race(instance, SolveContext::unlimited());
  first.schedule.validate(instance);
  EXPECT_EQ(first.winner, second.winner);
  EXPECT_EQ(first.makespan, second.makespan);
  // Byte-identical winner schedule: same assignment vector, job for job.
  EXPECT_EQ(first.schedule, second.schedule);
  ASSERT_EQ(first.racers.size(), second.racers.size());
  for (std::size_t i = 0; i < first.racers.size(); ++i) {
    EXPECT_EQ(first.racers[i].status, second.racers[i].status);
    EXPECT_EQ(first.racers[i].makespan, second.racers[i].makespan);
    // The read-once board snapshot each racer started from is part of the
    // deterministic contract: it is what makes standalone replay possible.
    EXPECT_EQ(first.racers[i].start_bound, second.racers[i].start_bound);
  }
}

TEST(Portfolio, WinnerReproducesStandaloneFromItsStartBound) {
  const Instance instance = paper_instance();
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas"};
  options.max_concurrent = 1;
  const PortfolioResult raced =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());

  // Re-run the winning racer alone, under a fresh board seeded with the
  // bound the portfolio recorded for it: the standalone solve must produce
  // the identical schedule (the racer is a pure function of instance,
  // build, and start bound).
  const RacerReport& winner = report_of(raced, raced.winner);
  EXPECT_EQ(winner.status, "won");
  SolveContext context;
  context.incumbent = std::make_shared<IncumbentBoard>();
  if (winner.start_bound != IncumbentBoard::kNone) {
    context.incumbent->publish(winner.start_bound);
  }
  const auto solo =
      SolverRegistry::global().create(raced.winner, options.build);
  const SolverResult replay = solo->solve(instance, context);
  EXPECT_EQ(replay.makespan, raced.makespan);
  EXPECT_EQ(replay.schedule, raced.schedule);
}

TEST(Portfolio, MakespanIsTheMinimumOverTheFinishers) {
  const Instance instance = paper_instance(8, 40, 7);
  PortfolioOptions options;
  options.racers = {"lpt", "ls", "ldm", "multifit", "ptas"};
  options.max_concurrent = 1;
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());
  result.schedule.validate(instance);
  int finishers = 0;
  for (const RacerReport& report : result.racers) {
    if (report.status == "ok" || report.status == "won") {
      ++finishers;
      EXPECT_LE(result.makespan, report.makespan) << report.name;
    }
  }
  EXPECT_GE(finishers, 5);
  EXPECT_EQ(result.notes.at("winner"), result.winner);
  EXPECT_EQ(result.notes.at("algorithm_used"), result.winner);
}

TEST(Portfolio, CertifiedOptimumSkipsOrCancelsTheRemainingRacers) {
  // Small enough for subset-dp to certify the optimum; once a proof lands,
  // racers listed after it must not run.
  const Instance instance = paper_instance(2, 10, 5);
  PortfolioOptions options;
  options.racers = {"lpt", "subset-dp", "ptas"};
  options.max_concurrent = 1;
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());
  result.schedule.validate(instance);
  EXPECT_TRUE(result.proven_optimal);
  // Either LPT was already optimal (tier 0 certifies, both heavies skipped)
  // or subset-dp certified and the PTAS was skipped.
  EXPECT_EQ(report_of(result, "ptas").status, "cancelled");
  EXPECT_GE(result.stats.at("racers_cancelled"), 1.0);
}

TEST(Portfolio, CancelledCallerDegradesToTierZeroWithBudgetReason) {
  const Instance instance = paper_instance();
  CancellationToken token = CancellationToken::make();
  token.request_cancel();
  PortfolioOptions options;
  options.racers = {"lpt", "ptas"};
  options.max_concurrent = 1;
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::with_token(token));
  result.schedule.validate(instance);
  // LPT does not poll the token (it is effectively instantaneous), so the
  // tier-0 rung still answers; the PTAS dies to the caller's token.
  EXPECT_EQ(result.winner, "lpt");
  EXPECT_EQ(report_of(result, "ptas").status, "failed: cancelled");
  EXPECT_EQ(result.notes.at("degradation_reason"), "portfolio-budget");
}

TEST(Portfolio, AllRacersFailedFallsBackToLpt) {
  const Instance instance = paper_instance();
  CancellationToken token = CancellationToken::make();
  token.request_cancel();
  PortfolioOptions options;
  options.racers = {"ptas"};  // every racer dies to the cancelled caller
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::with_token(token));
  result.schedule.validate(instance);
  EXPECT_EQ(result.winner, "lpt-fallback");
  EXPECT_EQ(result.notes.at("degradation_reason"), "portfolio-all-failed");
}

TEST(Portfolio, SolveOverloadMatchesRace) {
  const Instance instance = paper_instance(6, 30, 9);
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas"};
  options.max_concurrent = 1;
  PortfolioSolver solver(options);
  const SolverResult via_solve =
      solver.solve(instance, SolveContext::unlimited());
  const PortfolioResult via_race =
      solver.race(instance, SolveContext::unlimited());
  EXPECT_EQ(via_solve.makespan, via_race.makespan);
  EXPECT_EQ(via_solve.schedule, via_race.schedule);
  EXPECT_EQ(via_solve.notes.at("winner"), via_race.winner);
}

TEST(Portfolio, ConcurrentRaceStaysWithinTheFinishersBound) {
  // Concurrent heavy tier: the winner is whichever racer produced the best
  // makespan, and the result must still be a valid schedule with makespan
  // <= every finisher's (the board only ever improves).
  const Instance instance = paper_instance(8, 40, 11);
  PortfolioOptions options;
  options.racers = {"lpt", "multifit", "ptas", "spmd-ptas"};
  options.max_concurrent = 0;  // all heavies at once
  const PortfolioResult result =
      PortfolioSolver(options).race(instance, SolveContext::unlimited());
  result.schedule.validate(instance);
  for (const RacerReport& report : result.racers) {
    if (report.status == "ok" || report.status == "won") {
      EXPECT_LE(result.makespan, report.makespan) << report.name;
    }
  }
  EXPECT_GE(result.makespan, improved_lower_bound(instance));
}

TEST(Portfolio, CancellationStormLeavesEveryRaceAnswered) {
  // Storm: concurrent races while an external canceller yanks each race's
  // token at a staggered point. Every race must still return a valid
  // schedule (won, degraded, or lpt-fallback) and never hang or throw.
  const Instance instance = paper_instance(6, 30, 13);
  constexpr int kRaces = 8;
  std::vector<CancellationToken> tokens;
  tokens.reserve(kRaces);
  for (int i = 0; i < kRaces; ++i) tokens.push_back(CancellationToken::make());

  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  threads.reserve(kRaces + 1);
  for (int i = 0; i < kRaces; ++i) {
    threads.emplace_back([&, i] {
      PortfolioOptions options;
      options.racers = {"lpt", "multifit", "ptas", "spmd-ptas"};
      options.max_concurrent = 2;
      const PortfolioResult result = PortfolioSolver(options).race(
          instance, SolveContext::with_token(tokens[static_cast<std::size_t>(i)]));
      result.schedule.validate(instance);
      answered.fetch_add(1, std::memory_order_relaxed);
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRaces; ++i) {
      if (i % 2 == 0) std::this_thread::yield();
      tokens[static_cast<std::size_t>(i)].request_cancel();
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(answered.load(), kRaces);
}

TEST(Portfolio, SharedBoardAccumulatesAcrossRaces) {
  // A caller-provided board survives the race and carries the incumbent to
  // the next one: the second race starts from the first race's best bound.
  const Instance instance = paper_instance();
  SolveContext context;
  context.incumbent = std::make_shared<IncumbentBoard>();
  PortfolioOptions options;
  options.racers = {"lpt", "multifit"};
  options.max_concurrent = 1;
  PortfolioSolver solver(options);
  const PortfolioResult first = solver.race(instance, context);
  EXPECT_EQ(context.incumbent->best(), first.makespan);
  const PortfolioResult second = solver.race(instance, context);
  EXPECT_EQ(report_of(second, "lpt").start_bound, first.makespan);
}

}  // namespace
}  // namespace pcmax
