#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"

namespace pcmax {
namespace {

TEST(Bounds, MatchesEquation1And2OnKnownInstance) {
  // sum = 24, m = 3 -> ceil(24/3) = 8; max t = 9.
  const Instance instance(3, {9, 5, 4, 6});
  EXPECT_EQ(makespan_lower_bound(instance), 9);   // max(8, 9)
  EXPECT_EQ(makespan_upper_bound(instance), 17);  // 8 + 9
}

TEST(Bounds, AverageDominatesWhenJobsAreSmall) {
  // sum = 12, m = 2 -> ceil = 6 > max t = 3.
  const Instance instance(2, {3, 3, 3, 3});
  EXPECT_EQ(makespan_lower_bound(instance), 6);
  EXPECT_EQ(makespan_upper_bound(instance), 9);
}

TEST(Bounds, CeilingIsTakenOnTheAverage) {
  // sum = 7, m = 3 -> ceil(7/3) = 3.
  const Instance instance(3, {3, 2, 2});
  EXPECT_EQ(makespan_lower_bound(instance), 3);
  EXPECT_EQ(makespan_upper_bound(instance), 6);
}

TEST(Bounds, SingleMachineBoundsCollapseAroundTheSum) {
  const Instance instance(1, {4, 5, 6});
  EXPECT_EQ(makespan_lower_bound(instance), 15);
  EXPECT_EQ(makespan_upper_bound(instance), 21);
}

TEST(Bounds, SingleJob) {
  const Instance instance(5, {42});
  EXPECT_EQ(makespan_lower_bound(instance), 42);
  EXPECT_EQ(makespan_upper_bound(instance), 51);
}

TEST(Bounds, LowerIsNeverAboveUpper) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance instance = generate_instance(InstanceFamily::kUniform1To100, 4,
                                                12, seed, 0);
    EXPECT_LE(makespan_lower_bound(instance), makespan_upper_bound(instance));
  }
}

TEST(Bounds, SandwichTheOptimumOnSmallRandomInstances) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const Instance instance = generate_instance(family, 3, 9, seed, 1);
      const Time opt = brute_force_optimum(instance);
      EXPECT_LE(makespan_lower_bound(instance), opt) << family_name(family);
      EXPECT_GE(makespan_upper_bound(instance), opt) << family_name(family);
    }
  }
}

}  // namespace
}  // namespace pcmax
