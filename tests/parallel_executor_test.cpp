#include "parallel/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

void check_covers_once(Executor& executor, std::size_t n) {
  std::vector<std::atomic<int>> visits(n);
  executor.parallel_for(n, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1);
}

TEST(SequentialExecutor, RunsInline) {
  SequentialExecutor executor;
  EXPECT_EQ(executor.concurrency(), 1u);
  EXPECT_EQ(executor.name(), "sequential");
  check_covers_once(executor, 100);
}

TEST(SequentialExecutor, PassesFullRangeToBody) {
  SequentialExecutor executor;
  int calls = 0;
  executor.parallel_for_ranges(
      10,
      [&](std::size_t begin, std::size_t end, unsigned worker) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
        EXPECT_EQ(worker, 0u);
        ++calls;
      },
      LoopSchedule::kStatic, 1, CancellationToken{});
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolExecutor, CoversRangeForAllSchedules) {
  ThreadPoolExecutor executor(4);
  EXPECT_EQ(executor.concurrency(), 4u);
  EXPECT_EQ(executor.name(), "threadpool");
  for (auto schedule : {LoopSchedule::kStatic, LoopSchedule::kRoundRobin,
                        LoopSchedule::kDynamic}) {
    std::vector<std::atomic<int>> visits(333);
    executor.parallel_for_ranges(
        visits.size(),
        [&](std::size_t begin, std::size_t end, unsigned) {
          for (std::size_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        schedule, 7, CancellationToken{});
    for (std::size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "schedule broke at " << i;
    }
  }
}

#if defined(PCMAX_HAVE_OPENMP)
TEST(OpenMPExecutor, CoversRangeForAllSchedules) {
  OpenMPExecutor executor(4);
  EXPECT_EQ(executor.concurrency(), 4u);
  EXPECT_EQ(executor.name(), "openmp");
  for (auto schedule : {LoopSchedule::kStatic, LoopSchedule::kRoundRobin,
                        LoopSchedule::kDynamic}) {
    std::vector<std::atomic<int>> visits(333);
    executor.parallel_for_ranges(
        visits.size(),
        [&](std::size_t begin, std::size_t end, unsigned) {
          for (std::size_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        schedule, 7, CancellationToken{});
    for (std::size_t i = 0; i < visits.size(); ++i) {
      ASSERT_EQ(visits[i].load(), 1);
    }
  }
}
#endif

TEST(MakeExecutor, CreatesKnownBackends) {
  EXPECT_EQ(make_executor("sequential", 1)->name(), "sequential");
  EXPECT_EQ(make_executor("threadpool", 3)->concurrency(), 3u);
#if defined(PCMAX_HAVE_OPENMP)
  EXPECT_EQ(make_executor("openmp", 2)->name(), "openmp");
#endif
}

TEST(MakeExecutor, RejectsBadArguments) {
  EXPECT_THROW((void)make_executor("bogus", 1), InvalidArgumentError);
  EXPECT_THROW((void)make_executor("threadpool", 0), InvalidArgumentError);
  EXPECT_THROW((void)make_executor("sequential", 2), InvalidArgumentError);
}

TEST(Executor, ParallelSumEquivalenceAcrossBackends) {
  constexpr std::size_t kN = 10'000;
  auto sum_with = [&](Executor& ex) {
    std::atomic<long> sum{0};
    ex.parallel_for(kN, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    return sum.load();
  };
  SequentialExecutor seq;
  ThreadPoolExecutor pool(4);
  const long expected = sum_with(seq);
  EXPECT_EQ(sum_with(pool), expected);
#if defined(PCMAX_HAVE_OPENMP)
  OpenMPExecutor omp(4);
  EXPECT_EQ(sum_with(omp), expected);
#endif
}

}  // namespace
}  // namespace pcmax
