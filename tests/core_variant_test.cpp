// The problem-variant layer (ctest label: variants): tags and payloads on
// Instance, the versioned wire format, VariantSet + the structured
// VariantUnsupportedError on registry lookup, the capacity min(m, B)
// reduction with schedule lift, variant-aware bounds, and the deterministic
// variant generators / mixes. The classic path is asserted byte-identical
// throughout — pre-variant golden strings must never move.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/instance.hpp"
#include "core/instance_gen.hpp"
#include "core/schedule.hpp"
#include "core/solver_registry.hpp"
#include "core/variant.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

// --- tags and payloads ---

TEST(Variant, NamesRoundTrip) {
  for (const ProblemVariant v : kAllVariants) {
    EXPECT_EQ(variant_from_name(variant_name(v)), v);
  }
  EXPECT_THROW((void)variant_from_name("p||cmax"), InvalidArgumentError);
  EXPECT_THROW((void)variant_from_name(""), InvalidArgumentError);
}

TEST(Variant, ClassicInstancesAreZeroCostDefault) {
  const Instance instance(3, {4, 8, 15, 16, 23, 42});
  EXPECT_TRUE(instance.is_classic());
  EXPECT_EQ(instance.variant(), ProblemVariant::kClassic);
  EXPECT_EQ(instance.payload(), VariantPayload{});
  // The pre-variant wire line, byte for byte.
  EXPECT_EQ(instance.to_string(), "3 6 4 8 15 16 23 42");
}

TEST(Variant, CapacityConstructionAndValidation) {
  const Instance instance = Instance::capacity_restricted(4, {5, 7, 9}, 2);
  EXPECT_FALSE(instance.is_classic());
  EXPECT_EQ(instance.variant(), ProblemVariant::kCapacity);
  EXPECT_EQ(instance.capacity(), 2);
  EXPECT_THROW((void)Instance::capacity_restricted(4, {5, 7, 9}, 0),
               InvalidArgumentError);
  // Non-capacity variants reject a payload.
  EXPECT_THROW(Instance(4, {5, 7, 9}, ProblemVariant::kClassic,
                        VariantPayload{2}),
               InvalidArgumentError);
  EXPECT_THROW(Instance(4, {5, 7, 9}, ProblemVariant::kIncremental,
                        VariantPayload{2}),
               InvalidArgumentError);
}

// --- wire format v2 ---

TEST(Variant, WireFormatGoldenRoundTripBothForms) {
  // Golden strings: the legacy classic line and the versioned variant lines.
  const Instance classic(3, {4, 8, 15, 16, 23, 42});
  const Instance capacity = Instance::capacity_restricted(3, {5, 7, 9}, 2);
  const Instance incremental = Instance::incremental(3, {5, 7, 9});
  EXPECT_EQ(classic.to_string(), "3 6 4 8 15 16 23 42");
  EXPECT_EQ(capacity.to_string(), "pcmax.instance.v2 capacity 2 3 3 5 7 9");
  EXPECT_EQ(incremental.to_string(), "pcmax.instance.v2 incremental 3 3 5 7 9");
  for (const Instance* instance : {&classic, &capacity, &incremental}) {
    const Instance parsed = Instance::parse(instance->to_string());
    EXPECT_EQ(parsed, *instance);
    EXPECT_EQ(parsed.variant(), instance->variant());
    EXPECT_EQ(parsed.payload(), instance->payload());
  }
  // The legacy line still parses as classic.
  const Instance legacy = Instance::parse("3 6 4 8 15 16 23 42");
  EXPECT_TRUE(legacy.is_classic());
  EXPECT_EQ(legacy, classic);
}

TEST(Variant, WireFormatRejectsMalformedLines) {
  EXPECT_THROW((void)Instance::parse("pcmax.instance.v2"),
               InvalidArgumentError);
  EXPECT_THROW((void)Instance::parse("pcmax.instance.v2 warp 3 3 5 7 9"),
               InvalidArgumentError);
  // Capacity needs its B before m.
  EXPECT_THROW((void)Instance::parse("pcmax.instance.v2 capacity"),
               InvalidArgumentError);
  EXPECT_THROW(
      (void)Instance::parse("pcmax.instance.v2 incremental 3 3 5 7 9 11"),
      InvalidArgumentError);
  EXPECT_THROW((void)Instance::parse("pcmax.instance.v2 capacity 0 3 3 5 7 9"),
               InvalidArgumentError);
}

// --- VariantSet ---

TEST(Variant, VariantSetBasics) {
  const VariantSet none;
  EXPECT_TRUE(none.empty());
  const VariantSet classic_only{ProblemVariant::kClassic};
  EXPECT_TRUE(classic_only.contains(ProblemVariant::kClassic));
  EXPECT_FALSE(classic_only.contains(ProblemVariant::kCapacity));
  EXPECT_EQ(classic_only.to_string(), "classic");
  EXPECT_EQ(VariantSet::all().to_string(), "classic|capacity|incremental");
  for (const ProblemVariant v : kAllVariants) {
    EXPECT_TRUE(VariantSet::all().contains(v));
  }
  EXPECT_EQ((VariantSet{ProblemVariant::kClassic, ProblemVariant::kClassic}),
            classic_only);
}

// --- the capacity reduction ---

TEST(Variant, EffectiveMachinesAndClassicTwin) {
  const Instance tight = Instance::capacity_restricted(5, {5, 7, 9}, 2);
  EXPECT_EQ(variant_effective_machines(tight), 2);
  const Instance twin = variant_classic_twin(tight);
  EXPECT_TRUE(twin.is_classic());
  EXPECT_EQ(twin.machines(), 2);
  ASSERT_EQ(twin.jobs(), tight.jobs());
  // A vacuous restriction (B >= m) reduces to the same machine count.
  const Instance loose = Instance::capacity_restricted(3, {5, 7, 9}, 8);
  EXPECT_EQ(variant_effective_machines(loose), 3);
  // Classic and incremental pass through.
  const Instance classic(4, {5, 7, 9});
  EXPECT_EQ(variant_effective_machines(classic), 4);
  EXPECT_EQ(variant_classic_twin(classic), classic);
  EXPECT_EQ(variant_effective_machines(Instance::incremental(4, {5, 7, 9})), 4);
}

TEST(Variant, BoundsAdaptToTheEffectiveMachineCount) {
  const std::vector<Time> times = {9, 8, 7, 6, 5, 4, 3};
  const Instance capped = Instance::capacity_restricted(6, times, 2);
  const Instance twin(2, times);
  EXPECT_EQ(makespan_lower_bound(capped), makespan_lower_bound(twin));
  EXPECT_EQ(makespan_upper_bound(capped), makespan_upper_bound(twin));
  // The capped LB must exceed the unrestricted 6-machine LB here: 42 total
  // over 2 active machines forces at least 21.
  EXPECT_GE(makespan_lower_bound(capped), 21);
  EXPECT_GT(makespan_lower_bound(capped),
            makespan_lower_bound(Instance(6, times)));
}

TEST(Variant, ValidateVariantScheduleEnforcesTheCap) {
  const Instance instance = Instance::capacity_restricted(3, {5, 7, 9}, 2);
  Schedule spread(3);
  spread.assign(0, 0);
  spread.assign(1, 1);
  spread.assign(2, 2);  // three active machines > B = 2
  EXPECT_FALSE(variant_schedule_feasible(instance, spread));
  EXPECT_THROW(validate_variant_schedule(instance, spread),
               InvalidArgumentError);
  Schedule packed(3);
  packed.assign(0, 0);
  packed.assign(0, 1);
  packed.assign(1, 2);
  EXPECT_TRUE(variant_schedule_feasible(instance, packed));
  validate_variant_schedule(instance, packed);  // must not throw
}

TEST(Variant, SolveVariantWithLiftsToTheOriginalMachineCount) {
  const Instance instance =
      Instance::capacity_restricted(5, {9, 8, 7, 6, 5, 4}, 2);
  std::unique_ptr<Solver> lpt =
      SolverRegistry::global().create("lpt", SolverBuild{});
  const SolverResult result = solve_variant_with(*lpt, instance);
  EXPECT_EQ(result.schedule.machines(), 5);
  validate_variant_schedule(instance, result.schedule);
  EXPECT_EQ(result.makespan, result.schedule.makespan(instance));
  ASSERT_TRUE(result.notes.count("variant"));
  EXPECT_EQ(result.notes.at("variant"), "capacity");
  EXPECT_EQ(result.notes.at("variant.effective_machines"), "2");
}

// --- registry declarations and the structured mismatch error ---

TEST(Variant, BuiltinsDeclareFullSupportAndCapacityBruteIsCapacityOnly) {
  const SolverRegistry& registry = SolverRegistry::global();
  for (const std::string name : {"lpt", "multifit", "ptas", "resilient"}) {
    EXPECT_EQ(registry.supported_variants(name), VariantSet::all()) << name;
  }
  EXPECT_EQ(registry.supported_variants("capacity-brute"),
            (VariantSet{ProblemVariant::kCapacity}));
  const std::vector<std::string> capacity_names =
      registry.names_supporting(ProblemVariant::kCapacity);
  EXPECT_TRUE(std::find(capacity_names.begin(), capacity_names.end(),
                        "capacity-brute") != capacity_names.end());
  const std::vector<std::string> classic_names =
      registry.names_supporting(ProblemVariant::kClassic);
  EXPECT_TRUE(std::find(classic_names.begin(), classic_names.end(),
                        "capacity-brute") == classic_names.end());
}

TEST(Variant, MismatchThrowsTheStructuredError) {
  const SolverRegistry& registry = SolverRegistry::global();
  try {
    (void)registry.create("capacity-brute", SolverBuild{},
                          ProblemVariant::kClassic);
    FAIL() << "expected VariantUnsupportedError";
  } catch (const VariantUnsupportedError& e) {
    EXPECT_EQ(e.solver(), "capacity-brute");
    EXPECT_EQ(e.requested(), ProblemVariant::kClassic);
    EXPECT_EQ(e.supported(), (VariantSet{ProblemVariant::kCapacity}));
    const std::string message = e.what();
    EXPECT_NE(message.find("capacity-brute"), std::string::npos);
    EXPECT_NE(message.find("classic"), std::string::npos);
  }
  // The structured error is still an InvalidArgumentError for callers that
  // only handle the base hierarchy.
  EXPECT_THROW((void)registry.create("capacity-brute", SolverBuild{},
                                     ProblemVariant::kIncremental),
               InvalidArgumentError);
}

TEST(Variant, LegacyRegistrationDefaultsToClassicOnly) {
  SolverRegistry registry;
  registry.register_solver("twin-lpt", [](const SolverBuild& build) {
    return SolverRegistry::global().create("lpt", build);
  });
  EXPECT_EQ(registry.supported_variants("twin-lpt"),
            (VariantSet{ProblemVariant::kClassic}));
  EXPECT_THROW((void)registry.create("twin-lpt", SolverBuild{},
                                     ProblemVariant::kCapacity),
               VariantUnsupportedError);
  const Instance classic(3, {4, 8, 15});
  EXPECT_NE(registry.create_for("twin-lpt", SolverBuild{}, classic), nullptr);
}

TEST(Variant, CreateForCapacityWrapsInTheReductionAdapter) {
  const Instance instance =
      Instance::capacity_restricted(4, {9, 8, 7, 6, 5}, 2);
  std::unique_ptr<Solver> solver =
      SolverRegistry::global().create_for("lpt", SolverBuild{}, instance);
  const SolverResult result = solver->solve(instance);
  EXPECT_EQ(result.schedule.machines(), 4);
  validate_variant_schedule(instance, result.schedule);
  EXPECT_EQ(solver->name(), "LPT");  // the adapter is transparent by name
}

TEST(Variant, CapacityBruteForceRespectsTheCapAndIsOptimal) {
  const Instance instance =
      Instance::capacity_restricted(4, {5, 4, 3, 3, 2}, 2);
  std::unique_ptr<Solver> brute = SolverRegistry::global().create_for(
      "capacity-brute", SolverBuild{}, instance);
  const SolverResult result = brute->solve(instance);
  validate_variant_schedule(instance, result.schedule);
  EXPECT_TRUE(result.proven_optimal);
  // Two active machines over 17 total work: optimum is 9 (5+4 | 3+3+2).
  EXPECT_EQ(result.makespan, 9);
  EXPECT_EQ(capacity_brute_force_optimum(instance), 9);
}

// --- generators and mixes ---

TEST(Variant, ClassicGeneratorStreamIsUntouched) {
  for (std::uint64_t index = 0; index < 4; ++index) {
    const Instance classic = generate_instance(InstanceFamily::kUniform1To100,
                                               5, 12, 42, index);
    const Instance tagged = generate_variant_instance(
        ProblemVariant::kClassic, InstanceFamily::kUniform1To100, 5, 12, 42,
        index);
    EXPECT_EQ(tagged, classic);
    EXPECT_TRUE(tagged.is_classic());
  }
}

TEST(Variant, VariantGeneratorsAreDeterministicAndInRange) {
  for (std::uint64_t index = 0; index < 8; ++index) {
    const Instance capacity = generate_variant_instance(
        ProblemVariant::kCapacity, InstanceFamily::kUniform1To10, 6, 10, 7,
        index);
    EXPECT_EQ(capacity.variant(), ProblemVariant::kCapacity);
    EXPECT_GE(capacity.capacity(), 1);
    EXPECT_LE(capacity.capacity(), 6);
    // Same coordinates, same instance (times AND payload).
    EXPECT_EQ(capacity, generate_variant_instance(
                            ProblemVariant::kCapacity,
                            InstanceFamily::kUniform1To10, 6, 10, 7, index));
    // The times match the classic draw: the payload stream is independent.
    const Instance classic = generate_instance(InstanceFamily::kUniform1To10,
                                               6, 10, 7, index);
    ASSERT_EQ(capacity.jobs(), classic.jobs());
    for (int j = 0; j < classic.jobs(); ++j) {
      EXPECT_EQ(capacity.time(j), classic.time(j));
    }
    const Instance incremental = generate_variant_instance(
        ProblemVariant::kIncremental, InstanceFamily::kUniform1To10, 6, 10, 7,
        index);
    EXPECT_EQ(incremental.variant(), ProblemVariant::kIncremental);
  }
  EXPECT_EQ(variant_family_name(ProblemVariant::kClassic,
                                InstanceFamily::kUniform1To100),
            "U(1,100)");
  EXPECT_EQ(variant_family_name(ProblemVariant::kCapacity,
                                InstanceFamily::kUniform1To100),
            "cap[U(1,100)]");
  EXPECT_EQ(variant_family_name(ProblemVariant::kIncremental,
                                InstanceFamily::kUniform1To10),
            "inc[U(1,10)]");
}

TEST(Variant, VariantMixParsesAndAssignsRoundRobin) {
  const VariantMix mix = parse_variant_mix("classic=2,capacity=1,incremental=1");
  EXPECT_EQ(mix.classic, 2);
  EXPECT_EQ(mix.capacity, 1);
  EXPECT_EQ(mix.incremental, 1);
  EXPECT_EQ(mix.cycle(), 4);
  EXPECT_EQ(mix.pick(0), ProblemVariant::kClassic);
  EXPECT_EQ(mix.pick(1), ProblemVariant::kClassic);
  EXPECT_EQ(mix.pick(2), ProblemVariant::kCapacity);
  EXPECT_EQ(mix.pick(3), ProblemVariant::kIncremental);
  EXPECT_EQ(mix.pick(4), ProblemVariant::kClassic);  // cycle repeats
  EXPECT_THROW((void)parse_variant_mix(""), InvalidArgumentError);
  EXPECT_THROW((void)parse_variant_mix("classic"), InvalidArgumentError);
  EXPECT_THROW((void)parse_variant_mix("warp=1"), InvalidArgumentError);
  EXPECT_THROW((void)parse_variant_mix("classic=-1"), InvalidArgumentError);
  EXPECT_THROW((void)parse_variant_mix("classic=0,capacity=0"),
               InvalidArgumentError);
  EXPECT_THROW((void)parse_variant_mix("classic=1x"), InvalidArgumentError);
}

TEST(Variant, ApplyVariantMixIsDeterministicAndClassicIsIdentity) {
  const VariantMix mix = parse_variant_mix("classic=1,capacity=1");
  const Instance base(5, {9, 8, 7, 6});
  // Position 0 is classic: byte-identical passthrough.
  EXPECT_EQ(apply_variant_mix(mix, base, 42, 0), base);
  const Instance tagged = apply_variant_mix(mix, base, 42, 1);
  EXPECT_EQ(tagged.variant(), ProblemVariant::kCapacity);
  EXPECT_GE(tagged.capacity(), 1);
  EXPECT_LE(tagged.capacity(), 5);
  EXPECT_EQ(tagged, apply_variant_mix(mix, base, 42, 1));  // reproducible
}

}  // namespace
}  // namespace pcmax
