#include "util/table_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace pcmax {
namespace {

TEST(TableBuffer, DefaultConstructedIsEmpty) {
  TableBuffer<std::int32_t> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.data(), nullptr);
  EXPECT_EQ(buffer.alignment(), 0u);
}

TEST(TableBuffer, FillsAndIsCacheLineAligned) {
  TableBuffer<std::int32_t> buffer(1000, -7);
  ASSERT_EQ(buffer.size(), 1000u);
  EXPECT_EQ(buffer.alignment(), TableBuffer<std::int32_t>::kCacheLine);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) %
                TableBuffer<std::int32_t>::kCacheLine,
            0u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], -7) << i;
  }
  buffer[3] = 42;
  EXPECT_EQ(buffer[3], 42);
}

TEST(TableBuffer, SmallHugePageRequestDegradesToCacheLine) {
  // Below one huge page the kHugePage policy must not waste a 2 MiB-aligned
  // (hence 2 MiB-sized, on most allocators) block on a tiny table.
  TableBuffer<std::int32_t> buffer(64, 0, TableAlloc::kHugePage);
  EXPECT_EQ(buffer.alignment(), TableBuffer<std::int32_t>::kCacheLine);
}

TEST(TableBuffer, LargeHugePageRequestIsHugePageAligned) {
  constexpr std::size_t kEntries =
      TableBuffer<std::int32_t>::kHugePageBytes / sizeof(std::int32_t);
  TableBuffer<std::int32_t> buffer(kEntries, 1, TableAlloc::kHugePage);
  EXPECT_EQ(buffer.alignment(), TableBuffer<std::int32_t>::kHugePageBytes);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) %
                TableBuffer<std::int32_t>::kHugePageBytes,
            0u);
  EXPECT_EQ(buffer[0], 1);
  EXPECT_EQ(buffer[kEntries - 1], 1);
}

TEST(TableBuffer, CopyIsDeepAndKeepsAlignment) {
  TableBuffer<std::int32_t> original(256, 5);
  original[10] = 99;
  TableBuffer<std::int32_t> copy(original);
  ASSERT_EQ(copy.size(), original.size());
  EXPECT_EQ(copy.alignment(), original.alignment());
  EXPECT_NE(copy.data(), original.data());
  EXPECT_EQ(copy[10], 99);
  copy[10] = 1;
  EXPECT_EQ(original[10], 99);

  TableBuffer<std::int32_t> assigned;
  assigned = original;
  EXPECT_EQ(assigned.size(), 256u);
  EXPECT_EQ(assigned[10], 99);
}

TEST(TableBuffer, MoveTransfersOwnership) {
  TableBuffer<std::int32_t> original(128, 3);
  const std::int32_t* data = original.data();
  TableBuffer<std::int32_t> moved(std::move(original));
  EXPECT_EQ(moved.data(), data);
  EXPECT_EQ(moved.size(), 128u);
  EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move)

  TableBuffer<std::int32_t> assigned(16, 0);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.data(), data);
  EXPECT_EQ(assigned.size(), 128u);
}

TEST(TableBuffer, ZeroSizeAllocatesNothing) {
  TableBuffer<std::int32_t> buffer(0, 7, TableAlloc::kHugePage);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.data(), nullptr);
}

}  // namespace
}  // namespace pcmax
