// Tests the obs metrics layer: deterministic counters under
// SequentialExecutor, the JSON export round trip, the ISSUE acceptance
// property (per-worker DP entry totals sum to the state-space size), and
// no-op behaviour when no collector is installed (or the layer is compiled
// out with PCMAX_METRICS=OFF).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/dp_sequential.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"
#include "parallel/executor.hpp"
#include "util/json.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

RoundedInstance make_rounded(const std::vector<Time>& sizes,
                             const std::vector<int>& counts, Time target) {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(target, 4);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    rounded.class_index.push_back(static_cast<int>(d) + 1);
    rounded.class_size.push_back(sizes[d]);
    rounded.class_count.push_back(counts[d]);
    rounded.class_jobs.emplace_back();
    rounded.total_long_jobs += counts[d];
  }
  return rounded;
}

std::uint64_t sum(const std::vector<std::uint64_t>& values) {
  return std::accumulate(values.begin(), values.end(), std::uint64_t{0});
}

// A mid-size shape: 3 classes, sigma = 5*4*4 = 80, levels 0..9.
struct Fixture {
  std::vector<Time> sizes{9, 13, 17};
  std::vector<int> counts{4, 3, 3};
  Time target = 40;
  RoundedInstance rounded = make_rounded(sizes, counts, target);
  StateSpace space{counts, kBig};
  ConfigSet configs = enumerate_configs(rounded, space, kBig);
};

// ---------------------------------------------------------------------------
// JsonValue (util/json): the serializer the exporter depends on.
// ---------------------------------------------------------------------------

TEST(Json, RoundTripsScalarsExactly) {
  JsonValue object = JsonValue::make_object();
  object["null"] = JsonValue();
  object["flag"] = JsonValue(true);
  object["small"] = JsonValue(42);
  object["big"] = JsonValue(std::int64_t{9007199254740993});  // > 2^53
  object["negative"] = JsonValue(std::int64_t{-123456789012345});
  object["pi"] = JsonValue(3.25);
  object["text"] = JsonValue("quote \" backslash \\ newline \n tab \t");
  for (const bool pretty : {false, true}) {
    const JsonValue parsed = JsonValue::parse(object.dump(pretty));
    EXPECT_EQ(parsed, object) << "pretty=" << pretty;
    // 2^53+1 is not representable as a double: it must have stayed int64.
    EXPECT_TRUE(parsed.at("big").is_int());
    EXPECT_EQ(parsed.at("big").as_int(), 9007199254740993);
    EXPECT_TRUE(parsed.at("pi").is_double());
  }
}

TEST(Json, RoundTripsNestedStructures) {
  JsonValue root = JsonValue::make_object();
  root["rows"].append(JsonValue(1)).append(JsonValue(2.5)).append(
      JsonValue("three"));
  root["nested"]["inner"]["deep"] = JsonValue(7);
  root["empty_array"] = JsonValue::make_array();
  root["empty_object"] = JsonValue::make_object();
  const JsonValue parsed = JsonValue::parse(root.dump(true));
  EXPECT_EQ(parsed, root);
  EXPECT_EQ(parsed.at("rows").size(), 3u);
  EXPECT_EQ(parsed.at("nested").at("inner").at("deep").as_int(), 7);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::exception);
  EXPECT_THROW(JsonValue::parse("{"), std::exception);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::exception);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), std::exception);
  EXPECT_THROW(JsonValue::parse("nul"), std::exception);
}

TEST(Json, ParsesUnicodeEscapes) {
  const JsonValue parsed = JsonValue::parse(R"({"s": "aé€"})");
  EXPECT_EQ(parsed.at("s").as_string(), "a\xc3\xa9\xe2\x82\xac");
}

// ---------------------------------------------------------------------------
// Metrics core: counters, timers, buffers.
// ---------------------------------------------------------------------------

TEST(Metrics, CountersAccumulatePerWorkerAndTotal) {
  obs::Metrics metrics(4);
  metrics.add(0, obs::Counter::kPoolIterations, 10);
  metrics.add(1, obs::Counter::kPoolIterations, 20);
  metrics.add(3, obs::Counter::kPoolIterations);
  EXPECT_EQ(metrics.counter_of(0, obs::Counter::kPoolIterations), 10u);
  EXPECT_EQ(metrics.counter_of(1, obs::Counter::kPoolIterations), 20u);
  EXPECT_EQ(metrics.counter_of(2, obs::Counter::kPoolIterations), 0u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kPoolIterations), 31u);
  // Worker ids beyond the last slot clamp to the last slot.
  metrics.add(99, obs::Counter::kPoolTasks, 5);
  EXPECT_EQ(metrics.counter_of(3, obs::Counter::kPoolTasks), 5u);
}

TEST(Metrics, TimersAccumulateCallsAndNanoseconds) {
  obs::Metrics metrics(1);
  metrics.add_timer(obs::Timer::kLpSolve, 100);
  metrics.add_timer(obs::Timer::kLpSolve, 250);
  const obs::TimerStat stat = metrics.timer(obs::Timer::kLpSolve);
  EXPECT_EQ(stat.calls, 2u);
  EXPECT_EQ(stat.total_ns, 350u);
  EXPECT_EQ(metrics.timer(obs::Timer::kDpRun).calls, 0u);
}

TEST(Metrics, SpanBufferDropsBeyondCapacityAndCounts) {
  obs::Metrics metrics(1, /*span_capacity=*/2);
  metrics.add_span("a", 0, 1, 2);
  metrics.add_span("b", 0, 2, 3);
  metrics.add_span("c", 0, 3, 4);
  EXPECT_EQ(metrics.spans().size(), 2u);
  EXPECT_EQ(metrics.dropped_spans(), 1u);
}

TEST(Metrics, StableNamesForEveryCounterAndTimer) {
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const char* name = obs::counter_name(static_cast<obs::Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "counter " << i;
  }
  for (std::size_t i = 0; i < obs::kTimerCount; ++i) {
    const char* name = obs::timer_name(static_cast<obs::Timer>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "timer " << i;
  }
}

// ---------------------------------------------------------------------------
// Ambient collector: no-op behaviour.
// ---------------------------------------------------------------------------

TEST(Metrics, NothingRecordedWithoutInstalledCollector) {
  ASSERT_EQ(obs::current(), nullptr);
  Fixture f;
  // Instrumented code runs, but no collector is installed: a bystander
  // Metrics instance must stay untouched.
  obs::Metrics bystander(1);
  SequentialExecutor executor;
  ParallelDpOptions options;
  options.executor = &executor;
  options.variant = ParallelDpVariant::kBucketed;
  const DpRun run = dp_parallel(f.rounded, f.space, f.configs, options);
  EXPECT_GT(run.stats.entries_computed, 0u);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    EXPECT_EQ(bystander.counter_total(static_cast<obs::Counter>(i)), 0u);
  }
  EXPECT_TRUE(bystander.dp_runs().empty());
}

TEST(Metrics, ScopeInstallsAndRestoresCollector) {
  if constexpr (!obs::kMetricsEnabled) {
    // Compiled out: installation is a no-op and current() stays null.
    obs::Metrics metrics(1);
    const obs::MetricsScope scope(metrics);
    EXPECT_EQ(obs::current(), nullptr);
    return;
  } else {
    ASSERT_EQ(obs::current(), nullptr);
    obs::Metrics metrics(1);
    {
      const obs::MetricsScope scope(metrics);
      EXPECT_EQ(obs::current(), &metrics);
      obs::Metrics inner(1);
      {
        const obs::MetricsScope nested(inner);
        EXPECT_EQ(obs::current(), &inner);
      }
      EXPECT_EQ(obs::current(), &metrics);
    }
    EXPECT_EQ(obs::current(), nullptr);
  }
}

TEST(Metrics, RecorderInactiveWithoutCollector) {
  obs::DpRunRecorder recorder("test", "-", 10, 2);
  EXPECT_FALSE(recorder.active());
  EXPECT_EQ(recorder.level_begin(), 0u);
  recorder.level_end(0, 5, 0);
  recorder.add_worker(0, 5, 7, 3);
  recorder.finish();  // must not crash
}

// ---------------------------------------------------------------------------
// Instrumented DP: determinism and the entry-conservation acceptance check.
// ---------------------------------------------------------------------------

/// Runs one parallel DP under a fresh collector and returns the collector.
template <typename Run>
std::unique_ptr<obs::Metrics> collect(unsigned workers, Run&& run) {
  auto metrics = std::make_unique<obs::Metrics>(workers);
  const obs::MetricsScope scope(*metrics);
  run();
  return metrics;
}

TEST(MetricsDp, CountersDeterministicUnderSequentialExecutor) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  Fixture f;
  auto run_once = [&] {
    return collect(1, [&] {
      SequentialExecutor executor;
      for (const ParallelDpVariant variant :
           {ParallelDpVariant::kScanPerLevel, ParallelDpVariant::kBucketed}) {
        for (const LoopSchedule schedule :
             {LoopSchedule::kStatic, LoopSchedule::kRoundRobin,
              LoopSchedule::kDynamic}) {
          ParallelDpOptions options;
          options.executor = &executor;
          options.variant = variant;
          options.schedule = schedule;
          dp_parallel(f.rounded, f.space, f.configs, options);
        }
      }
      dp_bottom_up(f.rounded, f.space, f.configs);
    });
  };
  const auto first = run_once();
  const auto second = run_once();
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto counter = static_cast<obs::Counter>(i);
    EXPECT_EQ(first->counter_total(counter), second->counter_total(counter))
        << obs::counter_name(counter);
  }
  // 7 DP runs per repetition, each visible as a structured record.
  EXPECT_EQ(first->counter_total(obs::Counter::kDpRuns), 7u);
  EXPECT_EQ(first->dp_runs().size(), 7u);
}

TEST(MetricsDp, PerWorkerEntryTotalsSumToStateSpaceSize) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  Fixture f;
  const std::uint64_t sigma = f.space.size();
  for (const unsigned threads : {1u, 4u}) {
    const auto metrics = collect(threads, [&] {
      ThreadPoolExecutor executor(threads);
      for (const ParallelDpVariant variant :
           {ParallelDpVariant::kScanPerLevel, ParallelDpVariant::kBucketed,
            ParallelDpVariant::kSpmd}) {
        ParallelDpOptions options;
        options.executor = &executor;
        options.variant = variant;
        options.spmd_threads = threads;
        const DpRun run = dp_parallel(f.rounded, f.space, f.configs, options);
        EXPECT_EQ(run.stats.entries_computed, sigma);
      }
      dp_bottom_up(f.rounded, f.space, f.configs);
    });
    const std::vector<obs::DpRunRecord> runs = metrics->dp_runs();
    ASSERT_EQ(runs.size(), 4u) << "threads=" << threads;
    for (const obs::DpRunRecord& run : runs) {
      EXPECT_EQ(run.table_size, sigma) << run.variant;
      // The acceptance property: per-worker iteration totals conserve the
      // state space — every entry is computed exactly once by exactly one
      // worker, regardless of variant, schedule, or thread count.
      EXPECT_EQ(sum(run.per_worker_entries), sigma) << run.variant;
      EXPECT_EQ(run.levels, f.space.max_level() + 1) << run.variant;
      if (!run.per_level.empty()) {
        std::uint64_t per_level_total = 0;
        for (const obs::DpLevelSample& sample : run.per_level) {
          per_level_total += sample.entries;
        }
        EXPECT_EQ(per_level_total, sigma) << run.variant;
      }
    }
    // And the flat counter view agrees with the structured records.
    EXPECT_EQ(metrics->counter_total(obs::Counter::kDpEntries), 4 * sigma);
  }
}

TEST(MetricsDp, PoolCountersObserveLoopShape) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  constexpr std::size_t kIterations = 1000;
  const auto metrics = collect(4, [&] {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> touched{0};
    pool.run(
        kIterations,
        [&](std::size_t begin, std::size_t end, unsigned) {
          touched.fetch_add(end - begin, std::memory_order_relaxed);
        },
        LoopSchedule::kDynamic, /*chunk=*/16);
    ASSERT_EQ(touched.load(), kIterations);
  });
  EXPECT_EQ(metrics->counter_total(obs::Counter::kPoolRegions), 1u);
  EXPECT_EQ(metrics->counter_total(obs::Counter::kPoolIterations), kIterations);
  // Every dynamic claim covers <= chunk iterations.
  EXPECT_GE(metrics->counter_total(obs::Counter::kPoolDynamicClaims),
            kIterations / 16);
  EXPECT_EQ(metrics->timer(obs::Timer::kPoolRegion).calls, 1u);
}

// ---------------------------------------------------------------------------
// JSON export.
// ---------------------------------------------------------------------------

TEST(MetricsJson, ExportRoundTripsAndMatchesSchema) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  Fixture f;
  const auto metrics = collect(2, [&] {
    ThreadPoolExecutor executor(2);
    ParallelDpOptions options;
    options.executor = &executor;
    options.variant = ParallelDpVariant::kBucketed;
    dp_parallel(f.rounded, f.space, f.configs, options);
  });
  const JsonValue document = obs::metrics_to_json(*metrics);
  // Round trip: dump -> parse must reproduce the tree exactly (this is what
  // keeps 64-bit counters honest in the file the CLI writes).
  EXPECT_EQ(JsonValue::parse(document.dump(true)), document);
  EXPECT_EQ(JsonValue::parse(document.dump(false)), document);

  EXPECT_EQ(document.at("schema").as_string(), "pcmax.metrics.v1");
  EXPECT_TRUE(document.at("enabled").as_bool());
  EXPECT_EQ(document.at("workers").as_int(), 2);

  const JsonValue& totals = document.at("counters").at("totals");
  EXPECT_EQ(
      totals.at("dp.entries").as_int(),
      static_cast<std::int64_t>(metrics->counter_total(obs::Counter::kDpEntries)));
  EXPECT_EQ(document.at("counters").at("per_worker").size(), 2u);

  const JsonValue& runs = document.at("dp_runs");
  ASSERT_EQ(runs.size(), 1u);
  const JsonValue& run = runs.at(std::size_t{0});
  EXPECT_EQ(run.at("variant").as_string(), "bucketed");
  EXPECT_EQ(run.at("table_size").as_int(),
            static_cast<std::int64_t>(f.space.size()));
  // Per-level DP timings are present and conserve the entry count.
  const JsonValue& per_level = run.at("per_level");
  ASSERT_EQ(per_level.size(),
            static_cast<std::size_t>(f.space.max_level() + 1));
  std::int64_t level_entries = 0;
  for (std::size_t i = 0; i < per_level.size(); ++i) {
    level_entries += per_level.at(i).at("entries").as_int();
    EXPECT_GE(per_level.at(i).at("ns").as_int(), 0);
  }
  EXPECT_EQ(level_entries, static_cast<std::int64_t>(f.space.size()));
  // Per-worker totals likewise.
  std::int64_t worker_entries = 0;
  const JsonValue& per_worker = run.at("per_worker_entries");
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    worker_entries += per_worker.at(i).as_int();
  }
  EXPECT_EQ(worker_entries, static_cast<std::int64_t>(f.space.size()));

  EXPECT_NE(document.at("timers").find("dp.run"), nullptr);
  EXPECT_EQ(document.at("dropped").at("spans").as_int(), 0);
}

TEST(MetricsJson, ExportOfIdleCollectorIsValid) {
  obs::Metrics metrics(1);
  const JsonValue document = obs::metrics_to_json(metrics);
  EXPECT_EQ(JsonValue::parse(document.dump()), document);
  EXPECT_EQ(document.at("dp_runs").size(), 0u);
  EXPECT_EQ(document.at("spans").size(), 0u);
}

}  // namespace
}  // namespace pcmax
