// Sharding-equivalence blitz: the headline contract of the sharded service.
//
// A sharded SolveService (any shard count) must produce responses
// BYTE-IDENTICAL to the single-shard (PR 7) service for every request in a
// recorded trace. The foundation is purity: a response is a function of
// (machines, job multiset, epsilon) only — shard routing moves WHERE a
// request is served, never WHAT it is answered. These tests hold that
// contract for N in {1, 2, 8} under both shed policies, over
// permuted/duplicate-heavy traces, for coalescing followers, for structured
// sheds under a tiered storm, and with chaos injection armed on every
// registered fault site — plus the property that shard selection is a pure
// function of the fingerprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/instance_gen.hpp"
#include "core/resilient_solver.hpp"
#include "service/solve_service.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

Instance permuted(const Instance& instance, std::uint64_t seed) {
  std::vector<Time> times(instance.times().begin(), instance.times().end());
  std::mt19937_64 rng(seed);
  std::shuffle(times.begin(), times.end(), rng);
  return Instance(instance.machines(), std::move(times));
}

/// A permuted/duplicate-heavy trace: unique problems across families, each
/// followed (later, shuffled deterministically) by permuted twins and exact
/// duplicates.
std::vector<Instance> recorded_trace() {
  std::vector<Instance> trace;
  std::uint64_t index = 0;
  for (const InstanceFamily family : all_families()) {
    for (const auto& [m, n] : {std::pair{3, 12}, std::pair{4, 18}}) {
      const Instance original = generate_instance(family, m, n, 71, index++);
      trace.push_back(original);
      trace.push_back(permuted(original, index));      // permuted twin
      trace.push_back(original);                       // exact duplicate
    }
  }
  std::mt19937_64 rng(2026);
  std::shuffle(trace.begin(), trace.end(), rng);
  return trace;
}

/// Generous admission so nothing degrades; coalescing off and sequential
/// submission make the hit/miss pattern (and therefore EVERY response byte)
/// deterministic.
ServiceOptions deterministic_options(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.workers = shards;  // one worker per shard
  options.queue_capacity = 256;
  options.cache_capacity = 256;
  options.coalesce = false;
  return options;
}

/// Byte-by-byte equality of everything except WHERE and WHEN the response
/// was computed (shard index, wall-clock timings).
void expect_byte_identical(const SolveResponse& reference,
                           const SolveResponse& sharded,
                           const std::string& label) {
  EXPECT_EQ(reference.id, sharded.id) << label;
  EXPECT_EQ(reference.machines, sharded.machines) << label;
  EXPECT_EQ(reference.jobs, sharded.jobs) << label;
  EXPECT_EQ(reference.makespan, sharded.makespan) << label;
  EXPECT_EQ(reference.schedule, sharded.schedule) << label;
  EXPECT_EQ(reference.algorithm, sharded.algorithm) << label;
  EXPECT_EQ(reference.degradation_reason, sharded.degradation_reason) << label;
  EXPECT_EQ(reference.degraded, sharded.degraded) << label;
  EXPECT_EQ(reference.shed, sharded.shed) << label;
  EXPECT_EQ(reference.coalesced, sharded.coalesced) << label;
  EXPECT_EQ(reference.cache_hit, sharded.cache_hit) << label;
  EXPECT_EQ(reference.proven_optimal, sharded.proven_optimal) << label;
  EXPECT_EQ(reference.tenant, sharded.tenant) << label;
  EXPECT_EQ(reference.fingerprint, sharded.fingerprint) << label;
  EXPECT_EQ(reference.notes, sharded.notes) << label;
}

/// Replays `trace` sequentially (submit, harvest, repeat) so the response
/// stream is deterministic: ids, hit/miss pattern, everything.
std::vector<SolveResponse> replay(const std::vector<Instance>& trace,
                                  ServiceOptions options) {
  SolveService service(std::move(options));
  std::vector<SolveResponse> responses;
  responses.reserve(trace.size());
  for (const Instance& instance : trace) {
    responses.push_back(service.submit_async(SolveRequest{instance}).get());
  }
  return responses;
}

/// The pure-function reference: fresh single-threaded resilient solve of the
/// canonical twin, lifted back through the request's permutation.
SolveResponse reference_content(const Instance& instance, double epsilon) {
  const CanonicalInstance canonical(instance);
  ResilientOptions resilient;
  resilient.ptas.epsilon = epsilon;
  SolverResult result = ResilientSolver(resilient).solve(canonical.instance());
  SolveResponse reference;
  reference.makespan = result.makespan;
  reference.schedule =
      canonical.lift(result.schedule.assignment(canonical.instance()));
  reference.algorithm = result.notes.at("algorithm_used");
  return reference;
}

TEST(ServiceShardEquivalence, ShardedTraceIsByteIdenticalToSingleShard) {
  const std::vector<Instance> trace = recorded_trace();
  for (const ShedPolicy policy : {ShedPolicy::kStatic, ShedPolicy::kTiered}) {
    ServiceOptions baseline_options = deterministic_options(1);
    baseline_options.shed_policy = policy;
    const std::vector<SolveResponse> baseline =
        replay(trace, baseline_options);
    for (const SolveResponse& response : baseline) {
      ASSERT_FALSE(response.degraded) << response.degradation_reason;
    }
    for (const unsigned shards : {2u, 8u}) {
      ServiceOptions options = deterministic_options(shards);
      options.shed_policy = policy;
      const std::vector<SolveResponse> sharded = replay(trace, options);
      ASSERT_EQ(baseline.size(), sharded.size());
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        expect_byte_identical(
            baseline[i], sharded[i],
            "request " + std::to_string(i) + " shards=" +
                std::to_string(shards) +
                (policy == ShedPolicy::kTiered ? " tiered" : " static"));
      }
    }
  }
}

TEST(ServiceShardEquivalence, ShardSelectionIsAPureFunctionOfTheFingerprint) {
  // Property test over every family: permuted twins share a fingerprint,
  // hence a shard, at every shard count; the index is always in range; and
  // the choice depends on nothing but (fingerprint, shard_count).
  std::uint64_t index = 0;
  for (const InstanceFamily family : all_families()) {
    for (int trial = 0; trial < 4; ++trial) {
      const Instance instance = generate_instance(family, 3, 14, 83, index++);
      const CanonicalInstance canonical(instance);
      const Fingerprint key = request_fingerprint(canonical, 0.3);
      for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u, 16u}) {
        const std::size_t chosen = shard_index(key, shards);
        EXPECT_LT(chosen, shards);
        EXPECT_EQ(chosen, shard_index(key, shards)) << "not deterministic";
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          const CanonicalInstance twin_canonical(permuted(instance, seed));
          const Fingerprint twin_key = request_fingerprint(twin_canonical, 0.3);
          ASSERT_EQ(key, twin_key);
          EXPECT_EQ(chosen, shard_index(twin_key, shards))
              << "one instance on two shards";
        }
      }
    }
  }
}

TEST(ServiceShardEquivalence, ResponsesReportTheShardTheFingerprintSelects) {
  ServiceOptions options = deterministic_options(8);
  SolveService service(options);
  ASSERT_EQ(service.shard_count(), 8u);
  std::set<int> seen;
  for (std::uint64_t index = 0; index < 24; ++index) {
    const Instance instance = generate_instance(
        InstanceFamily::kUniform1To100, 3, 12, 59, index);
    const SolveResponse response =
        service.submit_async(SolveRequest{instance}).get();
    EXPECT_EQ(static_cast<std::size_t>(response.shard),
              service.shard_of(response.fingerprint));
    const SolveResponse duplicate =
        service.submit_async(SolveRequest{permuted(instance, index + 1)}).get();
    EXPECT_EQ(duplicate.shard, response.shard) << "duplicate changed shards";
    EXPECT_TRUE(duplicate.cache_hit);
    seen.insert(response.shard);
  }
  // 24 distinct fingerprints over 8 shards: the spread must actually spread.
  EXPECT_GE(seen.size(), 3u) << "shard selection is degenerate";
}

TEST(ServiceShardEquivalence, PinnedVariantRoutingReferenceValues) {
  // Variant-tagged requests route by the same (fingerprint, shard_count)
  // pure function as classic ones, off their OWN fingerprints. Pinning the
  // request keys (and where they land at 8 shards) makes any silent change
  // to variant canonicalization show up here before it strands a recorded
  // per-shard trace.
  const std::vector<Time> times{4, 8, 15, 16, 23, 42};
  const Fingerprint capacity_key = request_fingerprint(
      CanonicalInstance(
          Instance::capacity_restricted(3, std::vector<Time>(times), 2)),
      0.3);
  const Fingerprint incremental_key = request_fingerprint(
      CanonicalInstance(Instance::incremental(3, std::vector<Time>(times))),
      0.3);
  EXPECT_EQ(capacity_key.to_hex(), "4c81e719102e34942694727dbffe37e9");
  EXPECT_EQ(incremental_key.to_hex(), "6e0d3e81f7a5b4fbfa04fc72d3031a19");
  EXPECT_EQ(shard_index(capacity_key, 8), 2u);
  EXPECT_EQ(shard_index(incremental_key, 8), 6u);
  // A live 8-shard service agrees, and stamps the variant on the response.
  ServiceOptions options = deterministic_options(8);
  options.epsilon = 0.3;
  SolveService service(options);
  const SolveResponse capacity_response =
      service
          .submit_async(SolveRequest{
              Instance::capacity_restricted(3, std::vector<Time>(times), 2)})
          .get();
  EXPECT_EQ(capacity_response.variant, "capacity");
  EXPECT_EQ(capacity_response.fingerprint, capacity_key);
  EXPECT_EQ(static_cast<std::size_t>(capacity_response.shard),
            shard_index(capacity_key, 8));
  const SolveResponse incremental_response =
      service
          .submit_async(
              SolveRequest{Instance::incremental(3, std::vector<Time>(times))})
          .get();
  EXPECT_EQ(incremental_response.variant, "incremental");
  EXPECT_EQ(incremental_response.fingerprint, incremental_key);
  EXPECT_EQ(static_cast<std::size_t>(incremental_response.shard),
            shard_index(incremental_key, 8));
}

TEST(ServiceShardEquivalence, CoalescedFollowersMatchTheReferenceAtEveryShardCount) {
  // Concurrent duplicates share one in-flight solve; a follower's response
  // must still be exactly what a fresh solve of its own ordering would have
  // produced — at any shard count.
  for (const unsigned shards : {1u, 2u, 8u}) {
    ServiceOptions options;
    options.shards = shards;
    options.workers = 4;
    options.queue_capacity = 256;
    options.cache_capacity = 0;  // no cache: every duplicate must coalesce
                                 // or solve, never short-circuit
    options.coalesce = true;
    SolveService service(options);
    std::vector<Instance> submitted;
    std::vector<SolveFuture> futures;
    for (std::uint64_t unique = 0; unique < 4; ++unique) {
      const Instance original = generate_instance(
          InstanceFamily::kUniform1To100, 3, 14, 97, unique);
      for (std::uint64_t copy = 0; copy < 8; ++copy) {
        const Instance instance =
            copy == 0 ? original : permuted(original, copy);
        submitted.push_back(instance);
        futures.push_back(service.submit_async(SolveRequest{instance}));
      }
    }
    std::uint64_t coalesced = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const SolveResponse response = futures[i].get();
      ASSERT_FALSE(response.shed) << response.degradation_reason;
      ASSERT_FALSE(response.degraded) << response.degradation_reason;
      const SolveResponse expected =
          reference_content(submitted[i], options.epsilon);
      EXPECT_EQ(response.makespan, expected.makespan) << i;
      EXPECT_EQ(response.schedule, expected.schedule) << i;
      EXPECT_EQ(response.algorithm, expected.algorithm) << i;
      if (response.coalesced) ++coalesced;
    }
    EXPECT_EQ(service.stats().coalesced, coalesced);
  }
}

TEST(ServiceShardEquivalence, TieredStormShedsStructuredAndSolvesPure) {
  // Under a burst that overflows the (tiny, sharded) queues, every response
  // is either a structured shed or byte-identical in content to the
  // reference — a shed on one shard never corrupts a solve on another.
  for (const unsigned shards : {1u, 2u, 8u}) {
    ServiceOptions options;
    options.shards = shards;
    options.workers = shards;
    options.queue_capacity = 8;
    options.cache_capacity = 0;
    options.coalesce = false;
    options.shed_policy = ShedPolicy::kTiered;
    options.lite_pressure = 0.25;   // degrade early,
    options.heavy_pressure = 0.5;
    options.shed_pressure = 0.75;   // shed often
    SolveService service(options);
    std::vector<Instance> submitted;
    std::vector<SolveFuture> futures;
    for (std::uint64_t index = 0; index < 96; ++index) {
      const Instance instance = generate_instance(
          InstanceFamily::kUniform1To100, 3, 12, 13, index % 12);
      submitted.push_back(instance);
      futures.push_back(service.submit_async(SolveRequest{instance}));
    }
    std::uint64_t sheds = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const SolveResponse response = futures[i].get();
      if (response.shed) {
        EXPECT_EQ(response.degradation_reason.rfind("shed:", 0), 0u)
            << response.degradation_reason;
        ++sheds;
        continue;
      }
      response.schedule.validate(submitted[i]);
      EXPECT_GT(response.makespan, 0);
      if (!response.degraded) {
        const SolveResponse expected =
            reference_content(submitted[i], options.epsilon);
        EXPECT_EQ(response.makespan, expected.makespan) << i;
        EXPECT_EQ(response.schedule, expected.schedule) << i;
      }
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, futures.size());
    EXPECT_EQ(stats.shed_overload, sheds);
    // Aggregates really are the shard sums.
    std::uint64_t shard_requests = 0;
    for (const ShardStats& shard : stats.shards) {
      shard_requests += shard.requests;
    }
    EXPECT_EQ(shard_requests, stats.requests);
    EXPECT_EQ(stats.shards.size(), static_cast<std::size_t>(shards));
  }
}

TEST(ServiceShardEquivalence, ChaosReplayIsByteIdenticalAcrossShardCounts) {
  // The headline claim with chaos ON: replaying the same trace through a
  // fresh, identically-seeded chaos schedule produces byte-identical
  // responses at every shard count — the same requests fault, degrade, and
  // recover the same way, because sequential replay makes the global
  // per-site hit ordinals independent of where each request ran.
  {
    // Warm the registry so every pipeline site (including the PR 9
    // submission-path sites service.shard.dispatch / service.future) is
    // registered BEFORE the site list is captured — every arm must arm the
    // exact same schedule over the exact same sites.
    SolveService warm{deterministic_options(2)};
    (void)warm
        .submit_async(SolveRequest{generate_instance(
            InstanceFamily::kUniform1To100, 3, 10, 7, 0)})
        .get();
  }
  const std::vector<std::string> sites = fault_sites();
  const std::vector<Instance> trace = recorded_trace();

  auto chaos_replay = [&](unsigned shards) {
    ChaosOptions chaos_options;
    chaos_options.seed = 929;
    chaos_options.min_gap = 6;
    chaos_options.max_gap = 48;
    ChaosInjector chaos(chaos_options, sites);
    FaultScope scope(chaos);
    ServiceOptions options = deterministic_options(shards);
    // Breaker memory is deliberately shard-local (failures on one shard
    // never open another shard's breaker), so breaker-armed chaos is only
    // structurally — not byte — equivalent across shard counts. The storm
    // test below covers the breaker-armed case.
    options.breaker_enabled = false;
    std::vector<SolveResponse> responses = replay(trace, options);
    EXPECT_GT(chaos.total_fires(), 0u) << "shards=" << shards;
    return responses;
  };

  const std::vector<SolveResponse> baseline = chaos_replay(1);
  for (const unsigned shards : {2u, 8u}) {
    const std::vector<SolveResponse> sharded = chaos_replay(shards);
    ASSERT_EQ(baseline.size(), sharded.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      expect_byte_identical(baseline[i], sharded[i],
                            "chaos request " + std::to_string(i) +
                                " shards=" + std::to_string(shards));
    }
  }
}

TEST(ServiceShardEquivalence, ChaosArmedShardsStaySoundUnderStorm) {
  // Concurrent chaos storm, breaker armed: every response is
  // valid-or-structured. Full-fidelity content is NOT byte-compared here —
  // a fault inside solver internals can flip which engine wins without
  // degrading the response — but every delivered schedule must validate
  // against its instance and carry a positive makespan.
  {
    SolveService warm{deterministic_options(2)};
    (void)warm
        .submit_async(SolveRequest{generate_instance(
            InstanceFamily::kUniform1To100, 3, 10, 7, 0)})
        .get();
  }
  ChaosOptions chaos_options;
  chaos_options.seed = 929;
  chaos_options.min_gap = 6;
  chaos_options.max_gap = 64;
  ChaosInjector chaos(chaos_options, fault_sites());
  FaultScope scope(chaos);

  for (const unsigned shards : {1u, 8u}) {
    ServiceOptions options;
    options.shards = shards;
    options.workers = shards;
    options.queue_capacity = 64;
    options.cache_capacity = 64;
    options.shed_policy = ShedPolicy::kTiered;
    SolveService service(options);
    std::vector<Instance> submitted;
    std::vector<SolveFuture> futures;
    for (std::uint64_t index = 0; index < 64; ++index) {
      const Instance instance = generate_instance(
          InstanceFamily::kUniform1To100, 3, 12, 41, index % 8);
      submitted.push_back(instance);
      futures.push_back(service.submit_async(SolveRequest{instance}));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const SolveResponse response = futures[i].get();
      if (response.shed) {
        EXPECT_TRUE(response.degradation_reason.rfind("shed:", 0) == 0 ||
                    response.degradation_reason == "internal-error")
            << response.degradation_reason;
        continue;
      }
      response.schedule.validate(submitted[i]);
      EXPECT_GT(response.makespan, 0) << i;
      EXPECT_FALSE(response.algorithm.empty()) << i;
    }
  }
  EXPECT_GT(chaos.total_fires(), 0u);
}

TEST(ServiceShardEquivalence, AggregateHitRateDoesNotRegressWhenSharded) {
  // The per-shard cache slices (capacity total/N) partition the key space:
  // on a 50%-duplicate trace every duplicate must hit in aggregate, exactly
  // as the unsharded cache would — the PR 9 capacity fix under test.
  constexpr std::uint64_t kUniques = 32;
  std::vector<Instance> originals;
  std::vector<Instance> duplicates;
  for (std::uint64_t index = 0; index < kUniques; ++index) {
    originals.push_back(generate_instance(
        InstanceFamily::kUniform1To100, 3, 12, 113, index));
    duplicates.push_back(permuted(originals.back(), index + 1));
  }
  std::vector<std::uint64_t> hits;
  for (const unsigned shards : {1u, 8u}) {
    ServiceOptions options = deterministic_options(shards);
    SolveService service(options);
    for (const Instance& instance : originals) {
      const SolveResponse response =
          service.submit_async(SolveRequest{instance}).get();
      ASSERT_FALSE(response.cache_hit);
    }
    for (const Instance& instance : duplicates) {
      const SolveResponse response =
          service.submit_async(SolveRequest{instance}).get();
      EXPECT_TRUE(response.cache_hit) << "shards=" << shards;
    }
    const ServiceStats stats = service.stats();
    hits.push_back(stats.cache.hits);
    EXPECT_EQ(stats.cache.misses, kUniques) << "shards=" << shards;
    // Entries really are partitioned: the slices together hold every unique.
    EXPECT_EQ(stats.cache.size, kUniques) << "shards=" << shards;
  }
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], kUniques);        // single shard: every duplicate hit
  EXPECT_EQ(hits[1], hits[0]) << "sharded aggregate hit rate regressed";
}

}  // namespace
}  // namespace pcmax
