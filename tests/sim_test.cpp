#include <gtest/gtest.h>

#include "algo/lpt.hpp"
#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"
#include "exact/exact.hpp"
#include "sim/event_sim.hpp"
#include "sim/robustness.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(EventSim, SimulatedMakespanMatchesTheAnalyticalOne) {
  for (const InstanceFamily family : all_families()) {
    const Instance instance = generate_instance(family, 4, 20, 31, 0);
    const SolverResult lpt = LptSolver().solve(instance);
    const SimResult sim = simulate_schedule(instance, lpt.schedule);
    EXPECT_EQ(sim.makespan, lpt.makespan) << family_name(family);
  }
}

TEST(EventSim, CompletionTimesAreCumulativePerMachine) {
  const Instance instance(2, {5, 3, 2});
  Schedule schedule(2);
  schedule.assign(0, 0);  // m0: job0 [0,5)
  schedule.assign(0, 1);  // m0: job1 [5,8)
  schedule.assign(1, 2);  // m1: job2 [0,2)
  const SimResult sim = simulate_schedule(instance, schedule);
  EXPECT_EQ(sim.completion[0], 5);
  EXPECT_EQ(sim.completion[1], 8);
  EXPECT_EQ(sim.completion[2], 2);
  EXPECT_EQ(sim.makespan, 8);
  EXPECT_EQ(sim.machine_busy[0], 8);
  EXPECT_EQ(sim.machine_busy[1], 2);
}

TEST(EventSim, MakespanIsTheMaxCompletionTime) {
  // C_max = max_j C_j — the paper's objective definition, end to end.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 5, 30, 7, 0);
  const SolverResult result = PtasSolver(PtasOptions{}).solve(instance);
  const SimResult sim = simulate_schedule(instance, result.schedule);
  Time max_completion = 0;
  for (Time c : sim.completion) max_completion = std::max(max_completion, c);
  EXPECT_EQ(sim.makespan, max_completion);
  EXPECT_EQ(sim.makespan, result.makespan);
}

TEST(EventSim, EventLogIsTimeOrderedWithPairedStartsAndFinishes) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 3, 12, 9, 0);
  const SolverResult lpt = LptSolver().solve(instance);
  const SimResult sim = simulate_schedule(instance, lpt.schedule);

  ASSERT_EQ(sim.events.size(), 24u);
  Time previous = 0;
  std::vector<int> started(static_cast<std::size_t>(instance.jobs()), 0);
  std::vector<int> finished(static_cast<std::size_t>(instance.jobs()), 0);
  for (const SimEvent& event : sim.events) {
    EXPECT_GE(event.at, previous);
    previous = event.at;
    if (event.kind == SimEvent::Kind::kStart) {
      ++started[static_cast<std::size_t>(event.job)];
      EXPECT_EQ(finished[static_cast<std::size_t>(event.job)], 0);
    } else {
      ++finished[static_cast<std::size_t>(event.job)];
    }
  }
  for (int j = 0; j < instance.jobs(); ++j) {
    EXPECT_EQ(started[static_cast<std::size_t>(j)], 1);
    EXPECT_EQ(finished[static_cast<std::size_t>(j)], 1);
  }
}

TEST(EventSim, UtilisationAccountsIdleTime) {
  const Instance instance(2, {10, 1});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  const SimResult sim = simulate_schedule(instance, schedule);
  EXPECT_DOUBLE_EQ(sim.utilisation(0), 1.0);
  EXPECT_DOUBLE_EQ(sim.utilisation(1), 0.1);
  EXPECT_DOUBLE_EQ(sim.mean_utilisation(), 0.55);
}

TEST(EventSim, ActualTimesOverrideTheEstimates) {
  const Instance instance(2, {5, 5});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  const std::vector<Time> actual{7, 3};
  const SimResult sim = simulate_schedule(instance, schedule, actual);
  EXPECT_EQ(sim.makespan, 7);
  EXPECT_EQ(sim.completion[1], 3);
}

TEST(EventSim, RejectsBadActualTimes) {
  const Instance instance(2, {5, 5});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  EXPECT_THROW((void)simulate_schedule(instance, schedule, std::vector<Time>{5}),
               InvalidArgumentError);
  EXPECT_THROW(
      (void)simulate_schedule(instance, schedule, std::vector<Time>{5, 0}),
      InvalidArgumentError);
}

TEST(Robustness, ZeroNoiseReproducesTheNominalMakespan) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 15, 3, 0);
  const SolverResult lpt = LptSolver().solve(instance);
  NoiseModel noise;
  noise.delta = 0.0;
  const RobustnessReport report =
      analyze_robustness(instance, lpt.schedule, noise, 5);
  EXPECT_DOUBLE_EQ(report.mean_inflation, 1.0);
  EXPECT_DOUBLE_EQ(report.worst_inflation, 1.0);
}

TEST(Robustness, PerturbedTimesStayInTheNoiseBand) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 40, 5, 0);
  NoiseModel noise;
  noise.delta = 0.25;
  const std::vector<Time> actual = perturb_times(instance, noise, 0);
  ASSERT_EQ(actual.size(), 40u);
  for (int j = 0; j < instance.jobs(); ++j) {
    const double nominal = static_cast<double>(instance.time(j));
    const double realised = static_cast<double>(actual[static_cast<std::size_t>(j)]);
    EXPECT_GE(realised, std::max(1.0, 0.75 * nominal - 1.0)) << j;
    EXPECT_LE(realised, 1.25 * nominal + 1.0) << j;
  }
}

TEST(Robustness, InflationIsBoundedByTheNoiseBand) {
  // Every job inflates by at most (1+delta) (+1 for rounding), so the
  // realised makespan can exceed the nominal by at most that factor.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 11, 0);
  const SolverResult lpt = LptSolver().solve(instance);
  NoiseModel noise;
  noise.delta = 0.2;
  const RobustnessReport report =
      analyze_robustness(instance, lpt.schedule, noise, 20);
  EXPECT_LE(report.worst_inflation, 1.25);  // 1.2 + rounding slack
  EXPECT_GE(report.mean_inflation, 0.75);
  EXPECT_EQ(report.realised_makespan.count(), 20u);
}

TEST(Robustness, DifferentTrialsDiffer) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 20, 13, 0);
  NoiseModel noise;
  noise.delta = 0.3;
  EXPECT_NE(perturb_times(instance, noise, 0), perturb_times(instance, noise, 1));
  // Same trial index reproduces bit-for-bit.
  EXPECT_EQ(perturb_times(instance, noise, 2), perturb_times(instance, noise, 2));
}

TEST(Robustness, RejectsBadParameters) {
  const Instance instance(2, {3, 4});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  NoiseModel noise;
  noise.delta = 1.0;
  EXPECT_THROW((void)perturb_times(instance, noise, 0), InvalidArgumentError);
  noise.delta = 0.1;
  EXPECT_THROW((void)analyze_robustness(instance, schedule, noise, 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
