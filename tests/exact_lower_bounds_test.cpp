#include "exact/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "exact/exact.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(PigeonholeBound, PairBoundOnKnownInstance) {
  // m = 2, jobs {9,8,7}: among the 3 longest, two share a machine, so
  // OPT >= 8 + 7 = 15 — far above the Eq. 1 bound max(12, 9).
  const Instance instance(2, {9, 8, 7});
  EXPECT_EQ(makespan_lower_bound(instance), 12);
  EXPECT_EQ(pigeonhole_lower_bound(instance, 2), 15);
  EXPECT_EQ(brute_force_optimum(instance), 15);
}

TEST(PigeonholeBound, TripleBound) {
  // m = 2, 5 equal jobs of 10: three share a machine -> OPT >= 30.
  const Instance instance(2, std::vector<Time>(5, 10));
  EXPECT_EQ(pigeonhole_lower_bound(instance, 3), 30);
  EXPECT_EQ(brute_force_optimum(instance), 30);
}

TEST(PigeonholeBound, ZeroWhenTooFewJobs) {
  const Instance instance(4, {5, 5});
  EXPECT_EQ(pigeonhole_lower_bound(instance, 2), 0);
}

TEST(PigeonholeBound, RejectsGroupBelowTwo) {
  const Instance instance(2, {1, 2, 3});
  EXPECT_THROW((void)pigeonhole_lower_bound(instance, 1), InvalidArgumentError);
}

TEST(PigeonholeBound, UsesTheShortestOfThePrefix) {
  // m = 2, jobs {100, 1, 1}: the pair bound must use the two SHORTEST of
  // the three longest: 1 + 1 = 2, not 100 + 1.
  const Instance instance(2, {100, 1, 1});
  EXPECT_EQ(pigeonhole_lower_bound(instance, 2), 2);
}

TEST(ImprovedLowerBound, DominatesTheBasicBound) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      const Instance instance = generate_instance(family, 3, 13, 61, index);
      EXPECT_GE(improved_lower_bound(instance), makespan_lower_bound(instance))
          << family_name(family);
    }
  }
}

TEST(ImprovedLowerBound, NeverExceedsTheOptimum) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      const Instance instance = generate_instance(family, 3, 12, 71, index);
      EXPECT_LE(improved_lower_bound(instance), brute_force_optimum(instance))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(ImprovedLowerBound, IsTightOnNarrowRangeInstances) {
  // U(95,105)-style: nearly equal jobs are exactly where the pigeonhole
  // bounds shine (ceil(total/m) underestimates by almost a full job).
  const Instance instance(2, {100, 99, 101});
  EXPECT_EQ(improved_lower_bound(instance), 199);
  EXPECT_EQ(brute_force_optimum(instance), 199);
}

TEST(ImprovedLowerBound, SpeedsUpTheExactSolver) {
  // On the adversarial family the interval often closes without probes.
  const Instance instance =
      generate_instance(InstanceFamily::kUniformMTo2M1, 5, 11, 5, 0);
  const SolverResult result = ExactSolver().solve(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.makespan, brute_force_optimum(instance));
}

}  // namespace
}  // namespace pcmax
