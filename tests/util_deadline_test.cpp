#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.has_limit());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 1e18);
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const Deadline deadline = Deadline::after_ms(0);
  EXPECT_TRUE(deadline.has_limit());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.budget_seconds(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const Deadline deadline = Deadline::after_seconds(3600.0);
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 3000.0);
}

TEST(Deadline, RejectsNegativeBudget) {
  EXPECT_THROW((void)Deadline::after_ms(-1), InvalidArgumentError);
  EXPECT_THROW((void)Deadline::after_seconds(-0.5), InvalidArgumentError);
}

TEST(CancellationToken, InertTokenNeverStops) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.should_stop());
  EXPECT_NO_THROW(token.check());
  token.request_cancel();  // no-op
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancellationToken, RequestCancelIsStickyAndSharedAcrossCopies) {
  const CancellationToken token = CancellationToken::make();
  const CancellationToken copy = token;
  EXPECT_FALSE(copy.cancel_requested());
  token.request_cancel();
  EXPECT_TRUE(copy.cancel_requested());
  EXPECT_TRUE(copy.should_stop());
  EXPECT_THROW(copy.check(), CancelledError);
}

TEST(CancellationToken, ExpiredDeadlineThrowsDeadlineExceeded) {
  const CancellationToken token =
      CancellationToken::with_deadline(Deadline::after_ms(0));
  // The flag-only fast path does not read the clock...
  EXPECT_FALSE(token.cancel_requested());
  // ...the full check does, promotes the expiry, and throws the right type.
  EXPECT_TRUE(token.should_stop());
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_THROW(token.check(), DeadlineExceededError);
}

TEST(CancellationToken, LinkedChildObservesParentCancel) {
  const CancellationToken parent = CancellationToken::make();
  const CancellationToken child =
      CancellationToken::linked(parent, Deadline::after_seconds(3600.0));
  EXPECT_FALSE(child.should_stop());
  parent.request_cancel();
  EXPECT_TRUE(child.cancel_requested());
  EXPECT_THROW(child.check(), CancelledError);
}

TEST(CancellationToken, LinkedChildCancelDoesNotTouchTheParent) {
  const CancellationToken parent = CancellationToken::make();
  const CancellationToken child =
      CancellationToken::linked(parent, Deadline::after_ms(0));
  EXPECT_TRUE(child.should_stop());
  EXPECT_FALSE(parent.cancel_requested());
  EXPECT_FALSE(parent.should_stop());
}

TEST(CancellationToken, LinkedChildWithInertParentStillHonoursDeadline) {
  const CancellationToken child =
      CancellationToken::linked(CancellationToken{}, Deadline::after_ms(0));
  EXPECT_TRUE(child.should_stop());
  EXPECT_THROW(child.check(), DeadlineExceededError);
}

TEST(CancelCheck, PollsTheTokenEveryPeriodCalls) {
  const CancellationToken token = CancellationToken::make();
  CancelCheck check(token, 10);
  token.request_cancel();
  // The first period-1 polls are amortised away; the period-th consults the
  // token and throws.
  for (int i = 0; i < 9; ++i) EXPECT_NO_THROW(check.poll());
  EXPECT_THROW(check.poll(), CancelledError);
}

TEST(CancelCheck, ImmediateCheckBypassesTheAmortisation) {
  const CancellationToken token = CancellationToken::make();
  const CancelCheck check(token, 1 << 20);
  token.request_cancel();
  EXPECT_THROW(check.check(), CancelledError);
}

TEST(CancellationToken, CancelFromAnotherThreadIsObserved) {
  const CancellationToken token = CancellationToken::make();
  std::thread canceller([token] { token.request_cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancel_requested());
}

TEST(FaultInjector, ThrowActionRaisesResourceLimitError) {
  FaultInjector injector("pool.task", /*fire_at=*/2,
                         FaultInjector::Action::kThrow);
  FaultScope scope(injector);
  EXPECT_NO_THROW(fault_hit("pool.task"));
  EXPECT_THROW(fault_hit("pool.task"), ResourceLimitError);
  EXPECT_TRUE(injector.fired());
  // Fires exactly once: later hits are counted but inert.
  EXPECT_NO_THROW(fault_hit("pool.task"));
  EXPECT_EQ(injector.hits(), 3u);
}

TEST(FaultInjector, UnarmedSiteIsInert) {
  EXPECT_NO_THROW(fault_hit("dp.level"));  // no ambient injector at all
  FaultInjector injector("dp.level", 1, FaultInjector::Action::kThrow);
  {
    FaultScope scope(injector);
    EXPECT_NO_THROW(fault_hit("mip.node"));  // armed on a different site
  }
  // Scope gone: the armed site is inert again.
  EXPECT_NO_THROW(fault_hit("dp.level"));
  EXPECT_FALSE(injector.fired());
}

}  // namespace
}  // namespace pcmax
