#include "harness/calibration.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(Calibration, MeasuresPositiveCosts) {
  const CalibrationResult result = calibrate_machine(2);
  EXPECT_EQ(result.threads, 2u);
  EXPECT_GT(result.forkjoin_seconds, 0.0);
  EXPECT_GT(result.barrier_seconds, 0.0);
  EXPECT_GT(result.dp_entry_seconds, 0.0);
  // Sanity ceilings: none of these should be near a millisecond even on a
  // heavily shared machine.
  EXPECT_LT(result.forkjoin_seconds, 0.05);
  EXPECT_LT(result.dp_entry_seconds, 0.01);
}

TEST(Calibration, SingleThreadHasNoBarrierCost) {
  const CalibrationResult result = calibrate_machine(1);
  EXPECT_DOUBLE_EQ(result.barrier_seconds, 0.0);
  EXPECT_GE(result.forkjoin_seconds, 0.0);
}

TEST(Calibration, ProducesAUsableModel) {
  const CalibrationResult result = calibrate_machine(2);
  const SimMachineModel model = result.to_model(100.0);
  EXPECT_DOUBLE_EQ(model.work_scale, 100.0);
  EXPECT_DOUBLE_EQ(model.barrier_seconds, result.forkjoin_seconds);
}

TEST(Calibration, RejectsZeroThreads) {
  EXPECT_THROW((void)calibrate_machine(0), InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
