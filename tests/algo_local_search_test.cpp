#include "algo/local_search.hpp"

#include <gtest/gtest.h>

#include "algo/list_scheduling.hpp"
#include "algo/lpt.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"

namespace pcmax {
namespace {

TEST(LocalSearch, FixesAnObviouslyBadSchedule) {
  // Everything on machine 0; local search must spread the load.
  const Instance instance(3, {4, 4, 4, 4, 4, 4});
  Schedule schedule(3);
  for (int j = 0; j < 6; ++j) schedule.assign(0, j);
  const LocalSearchStats stats = improve_schedule(instance, schedule);
  schedule.validate(instance);
  EXPECT_EQ(schedule.makespan(instance), 8);  // the optimum: 2 jobs/machine
  EXPECT_GE(stats.moves, 1u);
}

TEST(LocalSearch, NeverWorsensASchedule) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 4, 16, 11, index);
      SolverResult ls = ListSchedulingSolver().solve(instance);
      const Time before = ls.makespan;
      improve_schedule(instance, ls.schedule);
      ls.schedule.validate(instance);
      EXPECT_LE(ls.schedule.makespan(instance), before) << family_name(family);
    }
  }
}

TEST(LocalSearch, ReachesMoveSwapLocalOptimum) {
  // After termination no single move can beat the critical load: verify by
  // re-running — a second pass must find nothing.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 5, 0);
  SolverResult ls = ListSchedulingSolver().solve(instance);
  improve_schedule(instance, ls.schedule);
  const LocalSearchStats second = improve_schedule(instance, ls.schedule);
  EXPECT_EQ(second.moves, 0u);
  EXPECT_EQ(second.swaps, 0u);
}

TEST(LocalSearch, RespectsTheRoundBudget) {
  const Instance instance(4, std::vector<Time>(40, 3));
  Schedule schedule(4);
  for (int j = 0; j < 40; ++j) schedule.assign(0, j);
  const LocalSearchStats stats = improve_schedule(instance, schedule, 5);
  EXPECT_LE(stats.rounds, 5u);
  schedule.validate(instance);  // still a complete schedule
}

TEST(LocalSearchSolver, DecoratesAndImproves) {
  // LS on adversarial order leaves room that the polish pass recovers.
  const Instance instance(3, {1, 1, 1, 1, 1, 3});
  ListSchedulingSolver inner;
  LocalSearchSolver polished(inner);
  EXPECT_EQ(polished.name(), "LS+LS*");
  const SolverResult raw = inner.solve(instance);
  const SolverResult improved = polished.solve(instance);
  improved.schedule.validate(instance);
  EXPECT_LE(improved.makespan, raw.makespan);
  EXPECT_EQ(improved.makespan, 3);  // reaches the optimum here
}

TEST(LocalSearchSolver, ReportsStats) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 15, 21, 0);
  ListSchedulingSolver inner;
  LocalSearchSolver polished(inner);
  const SolverResult r = polished.solve(instance);
  EXPECT_GE(r.stats.at("ls_rounds"), 1.0);
}

TEST(LocalSearchSolver, PolishedLsIsCompetitiveWithLpt) {
  // Not a theorem, but a useful regression: on these seeds the polished LS
  // never trails LPT by more than one job length.
  for (std::uint64_t index = 0; index < 5; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To10, 4, 20, 31, index);
    ListSchedulingSolver inner;
    const Time polished = LocalSearchSolver(inner).solve(instance).makespan;
    const Time lpt = LptSolver().solve(instance).makespan;
    EXPECT_LE(polished, lpt + instance.max_time()) << "#" << index;
  }
}

TEST(LocalSearch, OptimalScheduleIsAFixedPoint) {
  const Instance instance(2, {3, 3, 2, 2, 2});
  SolverResult opt = BruteForceSolver().solve(instance);
  const Time before = opt.makespan;
  const LocalSearchStats stats = improve_schedule(instance, opt.schedule);
  EXPECT_EQ(opt.schedule.makespan(instance), before);
  EXPECT_EQ(stats.moves + stats.swaps, 0u);
}

}  // namespace
}  // namespace pcmax
