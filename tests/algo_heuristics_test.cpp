// Tests for the extra heuristic solvers: LDM (Karmarkar-Karp differencing)
// and simulated annealing.
#include <gtest/gtest.h>

#include "algo/annealing.hpp"
#include "algo/ldm.hpp"
#include "algo/lpt.hpp"
#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

// ----------------------------------------------------------------- LDM ----

TEST(Ldm, TwoMachineDifferencingExample) {
  // {6,5,4,3,2}: differencing cancels perfectly — 6-5=1, 4-3=1, 2-1=1,
  // 1-1=0 — giving the exact split {6,4} vs {5,3,2} = 10/10.
  const Instance instance(2, {6, 5, 4, 3, 2});
  const SolverResult r = LdmSolver().solve(instance);
  r.schedule.validate(instance);
  EXPECT_EQ(r.makespan, 10);
}

TEST(Ldm, BeatsLptWhereGreedyCommitsTooEarly) {
  // {8,7,6,5,4} on 2 machines: LPT reaches 17, differencing 16 (OPT 15).
  const Instance instance(2, {8, 7, 6, 5, 4});
  EXPECT_EQ(LptSolver().solve(instance).makespan, 17);
  EXPECT_EQ(LdmSolver().solve(instance).makespan, 16);
  EXPECT_EQ(brute_force_optimum(instance), 15);
}

TEST(Ldm, HandlesDegenerateShapes) {
  EXPECT_EQ(LdmSolver().solve(Instance(1, {4, 5})).makespan, 9);
  EXPECT_EQ(LdmSolver().solve(Instance(3, {10})).makespan, 10);
  EXPECT_EQ(LdmSolver().solve(Instance(4, {5, 5, 5, 5})).makespan, 5);
}

TEST(Ldm, ProducesValidNearOptimalSchedules) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 11, 41, index);
      const SolverResult r = LdmSolver().solve(instance);
      r.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      EXPECT_GE(r.makespan, opt);
      // LDM has no constant-factor guarantee below 4/3-ish in theory, but on
      // these small uniform instances it stays well inside 4/3.
      EXPECT_LE(3 * r.makespan, 4 * opt) << family_name(family) << " #" << index;
    }
  }
}

TEST(Ldm, IsDeterministic) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 5, 30, 3, 0);
  const SolverResult a = LdmSolver().solve(instance);
  const SolverResult b = LdmSolver().solve(instance);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.schedule.assignment(instance), b.schedule.assignment(instance));
}

// ----------------------------------------------------------- annealing ----

TEST(Annealing, NeverLosesToItsLptStart) {
  for (const InstanceFamily family : all_families()) {
    const Instance instance = generate_instance(family, 4, 24, 51, 0);
    const SolverResult sa = AnnealingSolver().solve(instance);
    sa.schedule.validate(instance);
    EXPECT_LE(sa.makespan, LptSolver().solve(instance).makespan)
        << family_name(family);
  }
}

TEST(Annealing, FixedSeedIsDeterministic) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 7, 0);
  AnnealingOptions options;
  options.seed = 99;
  const SolverResult a = AnnealingSolver(options).solve(instance);
  const SolverResult b = AnnealingSolver(options).solve(instance);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.schedule.assignment(instance), b.schedule.assignment(instance));
}

TEST(Annealing, FindsOptimaOnSmallInstances) {
  // Plenty of iterations on a small instance: should land on the optimum.
  const Instance instance(3, {7, 5, 4, 4, 3, 2, 2, 1});
  AnnealingOptions options;
  options.iterations = 50'000;
  const SolverResult sa = AnnealingSolver(options).solve(instance);
  EXPECT_EQ(sa.makespan, brute_force_optimum(instance));
}

TEST(Annealing, ZeroIterationsReturnsLpt) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 3, 15, 9, 0);
  AnnealingOptions options;
  options.iterations = 0;
  const SolverResult sa = AnnealingSolver(options).solve(instance);
  EXPECT_EQ(sa.makespan, LptSolver().solve(instance).makespan);
}

TEST(Annealing, ClaimsOptimalityOnlyAtTheLowerBound) {
  const Instance balanced(2, {5, 5});  // LPT is optimal and equals LB
  const SolverResult r = AnnealingSolver().solve(balanced);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.makespan, 5);
}

TEST(Annealing, ValidatesItsOptions) {
  AnnealingOptions bad;
  bad.iterations = -1;
  EXPECT_THROW(AnnealingSolver{bad}, InvalidArgumentError);
  bad = AnnealingOptions{};
  bad.cooling = 1.0;
  EXPECT_THROW(AnnealingSolver{bad}, InvalidArgumentError);
  bad = AnnealingOptions{};
  bad.swap_probability = 1.5;
  EXPECT_THROW(AnnealingSolver{bad}, InvalidArgumentError);
}

TEST(Annealing, SingleMachineIsTrivial) {
  const Instance instance(1, {3, 4, 5});
  const SolverResult r = AnnealingSolver().solve(instance);
  EXPECT_EQ(r.makespan, 12);
}

TEST(Annealing, ReportsSearchStats) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 13, 0);
  const SolverResult r = AnnealingSolver().solve(instance);
  EXPECT_GE(r.stats.at("accepted"), 0.0);
  EXPECT_GE(r.stats.at("improvements"), 0.0);
  EXPECT_GT(r.stats.at("final_temperature"), 0.0);
}

}  // namespace
}  // namespace pcmax
