// End-to-end integration: generate -> serialise -> reload -> solve with
// every solver -> export the schedule -> reparse it -> replay it on the
// discrete-event simulator. Every hop must preserve consistency. This is
// the workflow a downstream user of the library (or of the pcmax CLI)
// actually runs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "pcmax.hpp"

namespace pcmax {
namespace {

TEST(IntegrationPipeline, FullRoundTripAcrossAllSolvers) {
  // 1. Generate a batch of instances and round-trip them through the
  //    instance-set text format.
  const std::vector<Instance> generated =
      generate_instances(InstanceFamily::kUniform1To100, 4, 18, 4242, 3);
  std::stringstream file;
  write_instances(file, generated);
  const std::vector<Instance> loaded = read_instances(file);
  ASSERT_EQ(loaded, generated);

  // 2. Solve each instance with every solver in the library.
  ThreadPoolExecutor executor(2);
  PtasOptions parallel_options;
  parallel_options.engine = DpEngine::kParallelBucketed;
  parallel_options.executor = &executor;

  LptSolver lpt;
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.push_back(std::make_unique<ListSchedulingSolver>());
  solvers.push_back(std::make_unique<LptSolver>());
  solvers.push_back(std::make_unique<MultifitSolver>());
  solvers.push_back(std::make_unique<LdmSolver>());
  solvers.push_back(std::make_unique<AnnealingSolver>());
  solvers.push_back(std::make_unique<LocalSearchSolver>(lpt));
  solvers.push_back(std::make_unique<PtasSolver>(PtasOptions{}));
  solvers.push_back(std::make_unique<PtasSolver>(parallel_options));
  solvers.push_back(std::make_unique<ExactSolver>());
  solvers.push_back(std::make_unique<PcmaxIpSolver>());

  for (const Instance& instance : loaded) {
    const Time opt = ExactSolver().solve(instance).makespan;
    for (const auto& solver : solvers) {
      const SolverResult result = solver->solve(instance);

      // 3. Schedules are valid, at least the optimum, and consistent with
      //    their reported makespan.
      result.schedule.validate(instance);
      EXPECT_GE(result.makespan, opt) << solver->name();
      EXPECT_EQ(result.makespan, result.schedule.makespan(instance))
          << solver->name();

      // 4. Text round-trip of the schedule preserves the assignment.
      const std::string text = schedule_to_text(instance, result.schedule);
      const Schedule reparsed = schedule_from_text(instance, text);
      EXPECT_EQ(reparsed.assignment(instance),
                result.schedule.assignment(instance))
          << solver->name();

      // 5. The discrete-event simulator reproduces the makespan, and the
      //    Gantt renderer accepts the schedule.
      const SimResult sim = simulate_schedule(instance, result.schedule);
      EXPECT_EQ(sim.makespan, result.makespan) << solver->name();
      EXPECT_FALSE(render_gantt(instance, result.schedule).empty());
    }
  }
}

TEST(IntegrationPipeline, GuaranteeChainHoldsThroughTheFullStack) {
  // The documented inequality LB <= T* <= OPT <= PTAS <= (1+eps) * T*,
  // checked with every quantity produced by a different module.
  for (std::uint64_t index = 0; index < 4; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To10N, 3, 12, 77, index);
    PtasOptions options;
    options.keep_trace = true;
    PtasSolver solver(options);
    const PtasResult ptas = solver.solve_with_trace(instance);
    const SolverResult exact = ExactSolver().solve(instance);
    ASSERT_TRUE(exact.proven_optimal);

    EXPECT_LE(makespan_lower_bound(instance), ptas.bisection.t_star);
    EXPECT_LE(ptas.bisection.t_star, exact.makespan);
    EXPECT_LE(exact.makespan, ptas.makespan);
    EXPECT_LE(ptas.makespan * solver.k(),
              (solver.k() + 1) * ptas.bisection.t_star);
  }
}

TEST(IntegrationPipeline, ImprovedBoundsAgreeWithEverySolverStack) {
  // improved LB <= SubsetDP == ExactSolver == MILP on 2-machine instances.
  for (std::uint64_t index = 0; index < 3; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 2, 10, 88, index);
    const Time subset = SubsetDpSolver().solve(instance).makespan;
    const Time exact = ExactSolver().solve(instance).makespan;
    const Time milp = PcmaxIpSolver().solve(instance).makespan;
    EXPECT_EQ(subset, exact);
    EXPECT_EQ(exact, milp);
    EXPECT_LE(improved_lower_bound(instance), subset);
  }
}

}  // namespace
}  // namespace pcmax
