#include "algo/ptas/ptas.hpp"

#include <gtest/gtest.h>

#include "algo/lpt.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(AccuracyK, MatchesCeilOfInverseEpsilon) {
  EXPECT_EQ(accuracy_k(0.3), 4);   // the paper's setting
  EXPECT_EQ(accuracy_k(0.5), 2);
  EXPECT_EQ(accuracy_k(1.0), 1);
  EXPECT_EQ(accuracy_k(2.0), 1);   // k never drops below 1
  EXPECT_EQ(accuracy_k(0.25), 4);
  EXPECT_EQ(accuracy_k(0.2), 5);
  EXPECT_EQ(accuracy_k(0.34), 3);
}

TEST(AccuracyK, RejectsNonPositiveOrTinyEpsilon) {
  EXPECT_THROW((void)accuracy_k(0.0), InvalidArgumentError);
  EXPECT_THROW((void)accuracy_k(-0.3), InvalidArgumentError);
  EXPECT_THROW((void)accuracy_k(0.001), InvalidArgumentError);
}

TEST(PtasSolver, NameDependsOnEngine) {
  EXPECT_EQ(PtasSolver(PtasOptions{}).name(), "PTAS");
  PtasOptions options;
  options.engine = DpEngine::kSpmd;
  options.spmd_threads = 2;
  EXPECT_EQ(PtasSolver(options).name(), "ParallelPTAS");
}

TEST(PtasSolver, ParallelEnginesRequireAnExecutor) {
  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = nullptr;
  EXPECT_THROW(PtasSolver{options}, InvalidArgumentError);
}

TEST(PtasSolver, SolvesTheQuickstartInstanceWithinTheGuarantee) {
  const Instance instance(4, {27, 19, 30, 11, 8, 21, 17, 5, 13, 9, 24, 16});
  PtasSolver solver(PtasOptions{});
  const SolverResult result = solver.solve(instance);
  result.schedule.validate(instance);
  const Time opt = brute_force_optimum(instance);
  EXPECT_LE(static_cast<double>(result.makespan), 1.3 * static_cast<double>(opt));
}

TEST(PtasSolver, AllEnginesProduceTheSameMakespan) {
  ThreadPoolExecutor executor(3);
  for (std::uint64_t index = 0; index < 4; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 4, 14, 21, index);

    Time reference = -1;
    for (const DpEngine engine :
         {DpEngine::kBottomUp, DpEngine::kTopDown, DpEngine::kParallelScan,
          DpEngine::kParallelBucketed, DpEngine::kSpmd}) {
      PtasOptions options;
      options.engine = engine;
      options.executor = &executor;
      options.spmd_threads = 3;
      PtasSolver solver(options);
      const SolverResult result = solver.solve(instance);
      result.schedule.validate(instance);
      if (reference < 0) {
        reference = result.makespan;
      } else {
        EXPECT_EQ(result.makespan, reference)
            << dp_engine_name(engine) << " on instance " << index;
      }
    }
  }
}

TEST(PtasSolver, RespectsTheApproximationGuaranteeAcrossEpsilons) {
  for (const double epsilon : {1.0, 0.5, 0.34, 0.3}) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      const Instance instance =
          generate_instance(InstanceFamily::kUniform1To10, 3, 10, 33, index);
      PtasOptions options;
      options.epsilon = epsilon;
      PtasSolver solver(options);
      const SolverResult result = solver.solve(instance);
      result.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      EXPECT_LE(static_cast<double>(result.makespan),
                (1.0 + epsilon) * static_cast<double>(opt) + 1e-9)
          << "eps=" << epsilon << " #" << index;
    }
  }
}

TEST(PtasSolver, SmallerEpsilonNeverGivesWorseGuarantee) {
  // Not a theorem per-instance, but (1+eps)*OPT is monotone; check the
  // guarantee holds at the tighter epsilon as well.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 44, 0);
  const Time opt = brute_force_optimum(instance);
  PtasOptions tight;
  tight.epsilon = 0.2;  // k = 5
  const SolverResult result = PtasSolver(tight).solve(instance);
  EXPECT_LE(static_cast<double>(result.makespan),
            1.2 * static_cast<double>(opt) + 1e-9);
}

TEST(PtasSolver, HandlesAllShortJobInstances) {
  // Many equal tiny jobs: at any probed T, everything is short and the PTAS
  // reduces to LPT.
  const Instance instance(4, std::vector<Time>(40, 2));
  const SolverResult result = PtasSolver(PtasOptions{}).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, 20);  // 40*2/4: perfectly balanced
  EXPECT_EQ(result.makespan, LptSolver().solve(instance).makespan);
}

TEST(PtasSolver, HandlesSingleJob) {
  const Instance instance(3, {7});
  const SolverResult result = PtasSolver(PtasOptions{}).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, 7);
}

TEST(PtasSolver, HandlesOneMachine) {
  const Instance instance(1, {3, 5, 8});
  const SolverResult result = PtasSolver(PtasOptions{}).solve(instance);
  EXPECT_EQ(result.makespan, 16);
}

TEST(PtasSolver, HandlesIdenticalLongJobs) {
  // 7 identical long jobs on 3 machines: OPT = 3 jobs on one machine.
  const Instance instance(3, std::vector<Time>(7, 10));
  const SolverResult result = PtasSolver(PtasOptions{}).solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, 30);
}

TEST(PtasSolver, ReportsDetailedStats) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 55, 0);
  PtasOptions options;
  PtasSolver solver(options);
  const SolverResult result = solver.solve(instance);
  EXPECT_DOUBLE_EQ(result.stats.at("k"), 4.0);
  EXPECT_GE(result.stats.at("iterations"), 1.0);
  EXPECT_GE(result.stats.at("t_star"), result.stats.at("lb0"));
  EXPECT_LE(result.stats.at("t_star"), result.stats.at("ub0"));
  EXPECT_GT(result.stats.at("max_table_size"), 0.0);
  EXPECT_GE(result.stats.at("dp_seconds"), 0.0);
}

TEST(PtasSolver, KeepTraceControlsTraceRetention) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 66, 0);
  PtasOptions with_trace;
  with_trace.keep_trace = true;
  const PtasResult traced = PtasSolver(with_trace).solve_with_trace(instance);
  EXPECT_FALSE(traced.bisection.trace.empty());

  PtasOptions without_trace;
  const PtasResult untraced = PtasSolver(without_trace).solve_with_trace(instance);
  EXPECT_TRUE(untraced.bisection.trace.empty());
  EXPECT_EQ(untraced.bisection.t_star, traced.bisection.t_star);
}

TEST(PtasSolver, MakespanNeverBelowTStar) {
  // T* <= OPT <= makespan, so t_star is a certified lower bound the solver
  // exposes for free.
  for (std::uint64_t index = 0; index < 5; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To10N, 3, 12, 77, index);
    const PtasResult result =
        PtasSolver(PtasOptions{}).solve_with_trace(instance);
    EXPECT_GE(result.makespan, result.bisection.t_star);
  }
}

TEST(PtasSolver, ParallelEngineMatchesSequentialOnEveryFamily) {
  ThreadPoolExecutor executor(2);
  for (const InstanceFamily family : all_families()) {
    const Instance instance = generate_instance(family, 5, 25, 88, 0);

    const SolverResult sequential = PtasSolver(PtasOptions{}).solve(instance);
    PtasOptions options;
    options.engine = DpEngine::kParallelBucketed;
    options.executor = &executor;
    const SolverResult parallel = PtasSolver(options).solve(instance);
    parallel.schedule.validate(instance);
    EXPECT_EQ(parallel.makespan, sequential.makespan) << family_name(family);
  }
}

}  // namespace
}  // namespace pcmax
