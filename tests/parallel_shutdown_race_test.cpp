// Regression tests for the drain-before-join shutdown discipline.
//
// The latent race this pins down: a synchronisation primitive that notifies
// its condition variable AFTER unlocking lets a peer observe the handed-over
// state, finish its protocol, and let the owner destroy the primitive while
// the notifier is still inside notify_one() on a freed condition variable.
// The fix is notify-under-lock everywhere plus destructors that take the
// mutex (BoundedQueue) or wait for quiescence before tearing down threads
// (ThreadPool, WorkStealingPool). These tests destroy each primitive at the
// EARLIEST protocol-legal moment, thousands of times, with the destruction
// racing the tail of a peer's push/run — under TSan/ASan (`ctest -L
// sanitize`) the old notify-after-unlock ordering fails here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "parallel/bounded_queue.hpp"
#include "parallel/executor.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace pcmax {
namespace {

TEST(ShutdownRace, QueueDestroyedRightAfterFinalPop) {
  // Owner pops the last expected item and immediately destroys the queue
  // while the producer may still be inside push()'s notify. The destructor's
  // mutex acquire is what makes this legal; notify-after-unlock makes it a
  // use-after-free.
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    auto queue = std::make_unique<BoundedQueue<int>>(1);
    std::thread producer([&] { queue->push(round); });
    const std::optional<int> item = queue->pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_EQ(*item, round);
    queue.reset();  // destroy while the producer may still be in push()
    producer.join();
  }
}

TEST(ShutdownRace, QueueDestroyedRightAfterProducerUnblocks) {
  // Mirror image: a producer blocked on a full queue is released by pop()'s
  // not_full notify; the producer then owns the queue's destruction.
  constexpr int kRounds = 1000;
  for (int round = 0; round < kRounds; ++round) {
    auto queue = std::make_unique<BoundedQueue<int>>(1);
    ASSERT_TRUE(queue->push(1));  // fill
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
      ASSERT_TRUE(queue->push(2));  // blocks until the consumer pops
      pushed.store(true);
      queue.reset();  // destroy while the consumer may still be in pop()
    });
    const std::optional<int> item = queue->pop();
    ASSERT_TRUE(item.has_value());
    producer.join();
    ASSERT_TRUE(pushed.load());
  }
}

TEST(ShutdownRace, QueueCloseDrainDestroy) {
  constexpr int kRounds = 500;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(4);
    std::thread consumer([&] {
      while (queue.pop().has_value()) {
      }
    });
    for (int i = 0; i < 8; ++i) queue.push(i);
    queue.close();
    consumer.join();
    EXPECT_FALSE(queue.push(99)) << "closed queue must refuse pushes";
    // Queue destroyed here, right after the consumer drained it.
  }
}

TEST(ShutdownRace, ThreadPoolDestroyedRightAfterRun) {
  // run() returns the moment the region's last worker checks out; the
  // destructor must drain (wait for region_ == nullptr, notify under the
  // lock) before joining — destroy immediately to race that wind-down.
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    const unsigned threads = 2 + static_cast<unsigned>(round % 3);
    std::atomic<std::size_t> covered{0};
    {
      ThreadPool pool(threads);
      pool.run(64, [&](std::size_t begin, std::size_t end, unsigned) {
        covered.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }  // destructor races the workers' region wind-down
    ASSERT_EQ(covered.load(), 64u);
  }
}

TEST(ShutdownRace, ThreadPoolDestroyedWithNoRegionEverRun) {
  for (int round = 0; round < 300; ++round) {
    ThreadPool pool(4);  // construct + destroy: join before any epoch bump
  }
}

TEST(ShutdownRace, WorkStealingPoolDestroyedRightAfterEpisode) {
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    const unsigned threads = 2 + static_cast<unsigned>(round % 3);
    std::atomic<std::size_t> covered{0};
    {
      WorkStealingPool pool(threads);
      if (round % 2 == 0) {
        pool.parallel_for_1d(64, [&](std::size_t begin, std::size_t end,
                                     unsigned) {
          covered.fetch_add(end - begin, std::memory_order_relaxed);
        });
      } else {
        const std::uint32_t roots[] = {0};
        pool.run_tasks(roots, 64,
                       [&](std::uint32_t task,
                           WorkStealingPool::TaskContext& ctx) {
                         covered.fetch_add(1, std::memory_order_relaxed);
                         if (task + 1 < 64) ctx.spawn(task + 1);
                       });
      }
    }  // destructor races the episode wind-down (incl. parked workers)
    ASSERT_EQ(covered.load(), 64u);
  }
}

TEST(ShutdownRace, ExecutorsDestroyedRightAfterParallelFor) {
  for (int round = 0; round < 100; ++round) {
    for (const char* backend : {"threadpool", "workstealing"}) {
      std::atomic<std::size_t> covered{0};
      {
        const std::unique_ptr<Executor> executor = make_executor(backend, 3);
        executor->parallel_for_ranges(
            32,
            [&](std::size_t begin, std::size_t end, unsigned) {
              covered.fetch_add(end - begin, std::memory_order_relaxed);
            },
            LoopSchedule::kDynamic, /*chunk=*/1);
      }
      ASSERT_EQ(covered.load(), 32u) << backend;
    }
  }
}

}  // namespace
}  // namespace pcmax
