#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.sum(), 4.5);
}

TEST(RunningStats, MatchesClosedFormOnKnownData) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a_copy);  // adopt
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{7.0}), 0.0);
}

TEST(BatchStats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(BatchStats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{9, 1, 5};
  (void)median(xs);
  EXPECT_EQ(xs, (std::vector<double>{9, 1, 5}));
}

TEST(BatchStats, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1, 8}), std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(geometric_mean(std::vector<double>{2, 2, 2}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW((void)geometric_mean(std::vector<double>{1.0, 0.0}),
               InvalidArgumentError);
  EXPECT_THROW((void)geometric_mean(std::vector<double>{-1.0}),
               InvalidArgumentError);
}

TEST(BatchStats, Percentile) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);  // linear interpolation
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{5.0}, 73), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_THROW((void)percentile(xs, -1), InvalidArgumentError);
  EXPECT_THROW((void)percentile(xs, 101), InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
