// Differential suites for the problem variants (ctest labels: variants,
// service).
//
//  * Capacity: the min(m, B) reduction (core/variant.hpp) against the
//    independent raw-enumeration reference (CapacityBruteForceSolver prunes
//    >B active machines on all m machines and never reduces) — equal optima
//    on exhaustive tiny sweeps, plus the PTAS-through-adapter staying inside
//    its (1 + eps) bound of the TRUE capacity optimum.
//  * Incremental: the O(1) commutative-lane fingerprint against full
//    re-canonicalization after every delta of randomized add/remove
//    sequences, and IncrementalSession's prepared-submission fast path
//    against a fresh from-scratch submit of the same multiset.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "algo/ptas/ptas.hpp"
#include "core/fingerprint.hpp"
#include "core/instance.hpp"
#include "core/instance_gen.hpp"
#include "core/solver_registry.hpp"
#include "core/variant.hpp"
#include "exact/brute_force.hpp"
#include "service/incremental.hpp"
#include "service/solve_service.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

// --- capacity: reduction vs raw enumeration ---

TEST(VariantDifferential, CapacityOptimumEqualsReducedClassicOptimum) {
  int cases = 0;
  for (int m = 2; m <= 4; ++m) {
    for (Time b = 1; b <= m; ++b) {
      for (int n = 5; n <= 7; ++n) {
        for (std::uint64_t seed : {11ULL, 29ULL}) {
          const Instance base = generate_instance(
              InstanceFamily::kUniform1To10, m, n, seed, 0);
          const Instance capped = Instance::capacity_restricted(
              m, std::vector<Time>(base.times().begin(), base.times().end()),
              b);
          // The raw reference never reduces; the twin path is the reduction.
          const Time raw = capacity_brute_force_optimum(capped);
          const Time reduced = brute_force_optimum(variant_classic_twin(capped));
          EXPECT_EQ(raw, reduced)
              << "m=" << m << " B=" << b << " n=" << n << " seed=" << seed;
          ++cases;
        }
      }
    }
  }
  EXPECT_EQ(cases, 54);
}

TEST(VariantDifferential, CapacityBruteSolverScheduleIsOptimalAndFeasible) {
  for (int m = 2; m <= 4; ++m) {
    for (Time b = 1; b <= m; ++b) {
      const Instance base =
          generate_instance(InstanceFamily::kUniform1To10, m, 6, 3, 0);
      const Instance capped = Instance::capacity_restricted(
          m, std::vector<Time>(base.times().begin(), base.times().end()), b);
      const SolverResult result =
          SolverRegistry::global()
              .create_for("capacity-brute", SolverBuild{}, capped)
              ->solve(capped);
      validate_variant_schedule(capped, result.schedule);
      EXPECT_TRUE(result.proven_optimal);
      EXPECT_EQ(result.makespan, capacity_brute_force_optimum(capped));
    }
  }
}

TEST(VariantDifferential, PtasThroughAdapterStaysInsideItsBound) {
  const double epsilon = 0.25;
  for (int m = 3; m <= 4; ++m) {
    for (Time b = 1; b <= m; ++b) {
      for (std::uint64_t seed : {5ULL, 17ULL}) {
        const Instance base = generate_instance(
            InstanceFamily::kUniform1To10, m, 7, seed, 1);
        const Instance capped = Instance::capacity_restricted(
            m, std::vector<Time>(base.times().begin(), base.times().end()), b);
        const Time optimum = capacity_brute_force_optimum(capped);
        PtasOptions options;
        options.epsilon = epsilon;
        PtasSolver ptas(options);
        const SolverResult result = solve_variant_with(ptas, capped);
        validate_variant_schedule(capped, result.schedule);
        EXPECT_GE(result.makespan, optimum);
        EXPECT_LE(static_cast<double>(result.makespan),
                  (1.0 + epsilon) * static_cast<double>(optimum) + 1e-9)
            << "m=" << m << " B=" << b << " seed=" << seed;
      }
    }
  }
}

// --- incremental: O(1) fingerprint vs full re-canonicalization ---

TEST(VariantDifferential, IncrementalFingerprintTracksFullRecanonicalization) {
  for (const std::uint64_t seed : {1ULL, 77ULL, 4242ULL}) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<Time> draw(1, 50);
    const int machines = 1 + static_cast<int>(rng() % 8);
    std::multiset<Time> times;
    std::vector<Time> initial;
    for (int j = 0; j < 6; ++j) {
      const Time t = draw(rng);
      times.insert(t);
      initial.push_back(t);
    }
    IncrementalFingerprint incremental(
        machines, std::span<const Time>(initial.data(), initial.size()));
    for (int op = 0; op < 200; ++op) {
      if (times.size() >= 2 && rng() % 3 == 0) {
        // Remove a uniformly chosen existing job.
        auto it = times.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng() % times.size()));
        incremental.remove_job(*it);
        times.erase(it);
      } else {
        const Time t = draw(rng);
        incremental.add_job(t);
        times.insert(t);
      }
      const Instance full = Instance::incremental(
          machines, std::vector<Time>(times.begin(), times.end()));
      const CanonicalInstance canonical(full);
      ASSERT_EQ(incremental.fingerprint(), canonical.fingerprint())
          << "seed=" << seed << " op=" << op;
      ASSERT_EQ(incremental.jobs(), full.jobs());
    }
    // Order independence: a fresh accumulator over the final multiset lands
    // on the same lanes whatever the insertion history was.
    const std::vector<Time> final_times(times.begin(), times.end());
    const IncrementalFingerprint fresh(
        machines, std::span<const Time>(final_times.data(), final_times.size()));
    EXPECT_EQ(fresh.fingerprint(), incremental.fingerprint());
    // Cross-variant separation: the classic fingerprint of the same multiset
    // lives in a different domain.
    const CanonicalInstance classic(Instance(machines, final_times));
    EXPECT_FALSE(classic.fingerprint() == incremental.fingerprint());
  }
}

TEST(VariantDifferential, IncrementalFingerprintRejectsBadDeltas) {
  IncrementalFingerprint fingerprint(2, std::vector<Time>{3, 4});
  EXPECT_THROW(fingerprint.add_job(0), InvalidArgumentError);
  fingerprint.remove_job(3);
  EXPECT_THROW(fingerprint.remove_job(4), InvalidArgumentError);  // last job
}

// --- incremental: the prepared-submission service fast path ---

TEST(VariantDifferential, IncrementalSessionResolveMatchesFreshSubmit) {
  ServiceOptions options;
  options.workers = 2;
  SolveService service(options);
  IncrementalSession session(service, /*machines=*/3, {4, 8, 15, 16, 23, 42});
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<Time> draw(1, 30);
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) {
      session.add_job(draw(rng));
    } else if (session.jobs() >= 2) {
      // Remove the job the materialized instance lists first.
      session.remove_job(session.instance().time(0));
    }
    const SolveResponse prepared = session.resolve().get();
    EXPECT_EQ(prepared.variant, "incremental");
    EXPECT_FALSE(prepared.shed);

    // A from-scratch service fed the same (unsorted-equivalent) multiset
    // must produce the same fingerprint, makespan, and schedule: the
    // prepared path changes cost, never answers.
    SolveService fresh_service(options);
    const SolveResponse fresh =
        fresh_service.submit(SolveRequest{session.instance()}).get();
    EXPECT_EQ(prepared.fingerprint, fresh.fingerprint);
    EXPECT_EQ(prepared.makespan, fresh.makespan);
    EXPECT_TRUE(prepared.schedule == fresh.schedule);
  }
  EXPECT_EQ(session.resolves(), 6u);
  // Same multiset, same service: the second resolve is a cache hit.
  const SolveResponse again = session.resolve().get();
  EXPECT_TRUE(again.cache_hit);
}

TEST(VariantDifferential, SessionFingerprintMatchesServiceRouting) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  IncrementalSession session(service, 4, {9, 8, 7});
  session.add_job(6);
  session.remove_job(9);
  const CanonicalInstance canonical(session.instance());
  EXPECT_EQ(session.instance_fingerprint(), canonical.fingerprint());
  // The response carries the REQUEST fingerprint: canonical instance plus
  // the effective epsilon (the session left it 0, so the service default).
  const SolveResponse response = session.resolve().get();
  EXPECT_EQ(response.fingerprint,
            request_fingerprint(canonical, options.epsilon));
}

TEST(VariantDifferential, SubmitPreparedRejectsDesyncedCanonicalForms) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  const Instance a = Instance::incremental(3, {1, 2, 3});
  const Instance b = Instance::incremental(4, {1, 2, 3});
  EXPECT_THROW(
      (void)service.submit_prepared(SolveRequest{a}, CanonicalInstance(b)),
      InvalidArgumentError);
  const Instance classic(3, {1, 2, 3});
  EXPECT_THROW((void)service.submit_prepared(SolveRequest{a},
                                             CanonicalInstance(classic)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
