// SolveFuture semantics: the asynchronous request lifecycle of the sharded
// service. then() continuations run exactly once (before OR after delivery,
// from any thread); deadline-expired waits return the structured
// "shed:deadline" response instead of hanging (and never cancel the
// underlying request); futures outliving the service drain cleanly; and a
// sanitize-labelled stress (many submitters, tiny queues, continuations
// racing deliveries) is TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/instance_gen.hpp"
#include "obs/metrics.hpp"
#include "service/solve_future.hpp"
#include "service/solve_service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

Instance small_instance(std::uint64_t index) {
  return generate_instance(InstanceFamily::kUniform1To100, 3, 12, 131, index);
}

/// Parks any worker entering handle() (the "service.request" fault site)
/// until release() — a deterministic guarantee that a request submitted
/// while the gate is closed cannot have been delivered yet, with no timing
/// assumptions about how fast the worker drains the queue.
class WorkerGate : public FaultHandler {
 public:
  void on_hit(const char* site) override {
    if (std::string_view(site) != "service.request") return;
    std::unique_lock lock(mutex_);
    parked_ = true;
    parked_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
  }

  /// Blocks until a worker is parked inside the gate.
  void wait_until_parked() {
    std::unique_lock lock(mutex_);
    parked_cv_.wait(lock, [&] { return parked_; });
  }

  /// Opens the gate permanently (parked and future hits pass through).
  void release() {
    std::lock_guard lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable parked_cv_;
  std::condition_variable release_cv_;
  bool parked_ = false;
  bool released_ = false;
};

TEST(SolveFutureApi, DefaultConstructedFutureIsInvalid) {
  SolveFuture future;
  EXPECT_FALSE(future.valid());
}

TEST(SolveFutureApi, GetIsRepeatableAndMatchesThen) {
  SolveService service;
  SolveFuture future =
      service.submit_async(SolveRequest{small_instance(0)});
  const SolveResponse first = future.get();
  const SolveResponse again = future.get();  // repeatable, same content
  EXPECT_EQ(first.makespan, again.makespan);
  EXPECT_EQ(first.schedule, again.schedule);
  EXPECT_EQ(first.fingerprint, again.fingerprint);
  // Attached after delivery: runs inline, sees the same response.
  std::optional<Time> seen;
  future.then([&](const SolveResponse& response) {
    seen = response.makespan;
  });
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, first.makespan);
}

TEST(SolveFutureApi, ContinuationsRunExactlyOnceEach) {
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  {
    SolveService service;
    SolveFuture future =
        service.submit_async(SolveRequest{small_instance(1)});
    // Attached (possibly) before delivery: exactly one run on delivery.
    future.then([&](const SolveResponse&) { before.fetch_add(1); });
    future.then([&](const SolveResponse&) { before.fetch_add(1); });
    const SolveResponse response = future.get();
    EXPECT_FALSE(response.shed);
    // Attached strictly after delivery: exactly one inline run.
    future.then([&](const SolveResponse&) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 1);
    // get() returning does not guarantee the pre-delivery continuations have
    // finished on the delivering worker; service teardown joins it.
  }
  EXPECT_EQ(before.load(), 2);
  EXPECT_EQ(after.load(), 1);
}

TEST(SolveFutureApi, DeadlineExpiredWaitReturnsStructuredShedNotAHang) {
  WorkerGate gate;
  FaultScope fault_scope(gate);
  ServiceOptions options;
  options.shards = 1;
  options.workers = 1;
  options.queue_capacity = 64;
  SolveService service(options);
  // Park the single worker inside the first request's handle(); the second
  // request then provably sits queued — undelivered — while we probe it.
  SolveFuture first = service.submit_async(SolveRequest{
      generate_instance(InstanceFamily::kUniform1To100, 4, 24, 7, 0)});
  gate.wait_until_parked();
  SolveFuture last = service.submit_async(SolveRequest{
      generate_instance(InstanceFamily::kUniform1To100, 4, 24, 7, 1)});
  const SolveResponse expired = last.get_within_ms(0);
  EXPECT_TRUE(expired.shed);
  EXPECT_TRUE(expired.degraded);
  EXPECT_EQ(expired.degradation_reason, "shed:deadline");
  EXPECT_EQ(expired.algorithm, "none");
  EXPECT_EQ(expired.machines, 4);
  EXPECT_EQ(expired.jobs, 24);

  // The expired WAIT did not shed the REQUEST: once the worker resumes, the
  // real response arrives, fully solved, with the identity the synthetic
  // shed carried.
  gate.release();
  const SolveResponse real = last.get();
  EXPECT_FALSE(real.shed);
  EXPECT_EQ(real.id, expired.id);
  EXPECT_EQ(real.fingerprint, expired.fingerprint);
  EXPECT_EQ(real.shard, expired.shard);
  EXPECT_GT(real.makespan, 0);
  // A delivered future answers get_within_ms with the real response.
  const SolveResponse again = last.get_within_ms(0);
  EXPECT_FALSE(again.shed);
  EXPECT_EQ(again.makespan, real.makespan);
  EXPECT_FALSE(first.get().shed);
}

TEST(SolveFutureApi, FuturesOutliveTheServiceAndDrainCleanly) {
  std::vector<SolveFuture> futures;
  {
    ServiceOptions options;
    options.shards = 4;
    options.workers = 4;
    SolveService service(options);
    for (std::uint64_t index = 0; index < 16; ++index) {
      futures.push_back(
          service.submit_async(SolveRequest{small_instance(index)}));
    }
    // Service destroyed here: drain semantics resolve every future first.
  }
  for (SolveFuture& future : futures) {
    ASSERT_TRUE(future.valid());
    EXPECT_TRUE(future.ready()) << "teardown left an unresolved future";
    const SolveResponse response = future.get();
    EXPECT_FALSE(response.shed) << response.degradation_reason;
    EXPECT_GT(response.makespan, 0);
  }
}

TEST(SolveFutureApi, BrokenPromiseDeliversAnErrorNotAHang) {
  SolveFuture future;
  {
    SolvePromise promise;
    future = promise.get_future();
    // Promise destroyed undelivered.
  }
  ASSERT_TRUE(future.ready());
  EXPECT_THROW((void)future.get(), Error);
}

TEST(SolveFutureApi, ExceptionalDeliveryDropsContinuations) {
  SolvePromise promise;
  SolveFuture future = promise.get_future();
  std::atomic<int> runs{0};
  future.then([&](const SolveResponse&) { runs.fetch_add(1); });
  promise.set_exception(
      std::make_exception_ptr(Error("solver exploded")));
  future.then([&](const SolveResponse&) { runs.fetch_add(1); });
  EXPECT_THROW((void)future.get(), Error);
  EXPECT_EQ(runs.load(), 0);
}

TEST(SolveFutureApi, ResolutionCountersTrackDeliveries) {
  obs::Metrics metrics(1);
  obs::MetricsScope scope(metrics);
  std::atomic<int> continuations{0};
  {
    SolveService service;
    std::vector<SolveFuture> futures;
    for (std::uint64_t index = 0; index < 6; ++index) {
      SolveFuture future =
          service.submit_async(SolveRequest{small_instance(index)});
      future.then([&](const SolveResponse&) { continuations.fetch_add(1); });
      futures.push_back(std::move(future));
    }
    for (SolveFuture& future : futures) (void)future.get();
    // Teardown joins the workers: every delivery, continuation run, and
    // counter bump is complete once the destructor returns.
  }
  EXPECT_EQ(continuations.load(), 6);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceShardDispatches), 6u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceFuturesResolved), 6u);
  EXPECT_EQ(
      metrics.counter_total(obs::Counter::kServiceFuturesContinuations), 6u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceFuturesExpired), 0u);
}

TEST(SolveFutureApi, ExpiredWaitsBumpTheExpiryCounter) {
  obs::Metrics metrics(1);
  obs::MetricsScope scope(metrics);
  WorkerGate gate;
  FaultScope fault_scope(gate);
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  SolveFuture first = service.submit_async(SolveRequest{
      generate_instance(InstanceFamily::kUniform1To100, 4, 24, 11, 0)});
  gate.wait_until_parked();
  SolveFuture last = service.submit_async(SolveRequest{
      generate_instance(InstanceFamily::kUniform1To100, 4, 24, 11, 1)});
  const SolveResponse expired = last.get_within_ms(0);
  EXPECT_EQ(expired.degradation_reason, "shed:deadline");
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceFuturesExpired), 1u);
  gate.release();
  (void)first.get();
  (void)last.get();
}

// The TSan-clean async stress: many submitters on tiny sharded queues under
// the tiered policy, every future carrying a continuation that races the
// delivering worker, every future harvested through a mix of get(),
// get_within_ms, and then(). Exactly-once per continuation; every request
// resolves.
TEST(SolveFutureStress, ManySubmittersTinyQueuesExactlyOnceDelivery) {
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 40;
  constexpr int kTotal = kSubmitters * kPerSubmitter;
  std::vector<std::atomic<int>> continuation_runs(kTotal);
  std::atomic<std::uint64_t> responses_seen{0};
  {
    ServiceOptions options;
    options.shards = 4;
    options.workers = 4;
    options.queue_capacity = 8;   // 2 per shard: constant overflow
    options.cache_capacity = 32;
    options.shed_policy = ShedPolicy::kTiered;
    SolveService service(options);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          const int slot = s * kPerSubmitter + i;
          SolveFuture future = service.submit_async(SolveRequest{
              generate_instance(InstanceFamily::kUniform1To100, 3, 10, 173,
                                static_cast<std::uint64_t>((s + i) % 6))});
          future.then([&, slot](const SolveResponse&) {
            continuation_runs[static_cast<std::size_t>(slot)].fetch_add(1);
            responses_seen.fetch_add(1);
          });
          switch (slot % 3) {
            case 0: {
              // Every harvested response is valid-or-structured: a real
              // solve (positive makespan) or an explicit shed.
              const SolveResponse response = future.get();
              EXPECT_TRUE(response.shed || response.makespan > 0)
                  << response.degradation_reason;
              break;
            }
            case 1: {
              // A 0 ms wait either sees the real response or a synthetic
              // shed; both are structured, neither hangs.
              const SolveResponse response = future.get_within_ms(0);
              EXPECT_TRUE(response.shed || response.makespan > 0)
                  << response.degradation_reason;
              break;
            }
            default:
              break;  // fire-and-forget: the continuation is the harvest
          }
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    // Service teardown drains every queue and joins every worker: when the
    // destructor returns, every delivery (and its continuations) is done.
  }
  EXPECT_EQ(responses_seen.load(), static_cast<std::uint64_t>(kTotal));
  for (int slot = 0; slot < kTotal; ++slot) {
    EXPECT_EQ(continuation_runs[static_cast<std::size_t>(slot)].load(), 1)
        << "continuation " << slot << " did not run exactly once";
  }
}

}  // namespace
}  // namespace pcmax
