// ResultCache: LRU bound/eviction/recency, the collision-verification
// branch, stat counters, and the obs counter mirror.
#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

Instance canonical_instance(Time distinguisher) {
  // Already sorted ascending, as the cache expects canonical forms.
  return Instance(2, {1, 2, 3, distinguisher + 10});
}

CacheEntry entry_for(const Instance& canonical, const std::string& algorithm) {
  CacheEntry entry{canonical, std::vector<int>(
                                  static_cast<std::size_t>(canonical.jobs()), 0),
                   canonical.total_time(), algorithm, false};
  return entry;
}

Fingerprint key_of(std::uint64_t id) { return Fingerprint{id, ~id}; }

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  const Instance canonical = canonical_instance(1);
  EXPECT_FALSE(cache.lookup(key_of(1), canonical).has_value());
  cache.insert(key_of(1), entry_for(canonical, "PTAS"));
  const auto hit = cache.lookup(key_of(1), canonical);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->algorithm, "PTAS");
  EXPECT_EQ(hit->makespan, canonical.total_time());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ResultCache, CapacityIsAHardBound) {
  ResultCache cache(3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    cache.insert(key_of(i), entry_for(canonical_instance(static_cast<Time>(i)),
                                      "PTAS"));
    EXPECT_LE(cache.stats().size, 3u);
  }
  EXPECT_EQ(cache.stats().size, 3u);
  EXPECT_EQ(cache.stats().evictions, 7u);
}

TEST(ResultCache, EvictsTheLeastRecentlyUsedEntry) {
  ResultCache cache(2);
  const Instance a = canonical_instance(1);
  const Instance b = canonical_instance(2);
  const Instance c = canonical_instance(3);
  cache.insert(key_of(1), entry_for(a, "A"));
  cache.insert(key_of(2), entry_for(b, "B"));
  // Touch A so B becomes the LRU entry, then push C past capacity.
  ASSERT_TRUE(cache.lookup(key_of(1), a).has_value());
  cache.insert(key_of(3), entry_for(c, "C"));
  EXPECT_TRUE(cache.lookup(key_of(1), a).has_value());   // survived
  EXPECT_FALSE(cache.lookup(key_of(2), b).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(3), c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, FingerprintCollisionDegradesToAMiss) {
  ResultCache cache(4);
  const Instance stored = canonical_instance(1);
  const Instance probe = canonical_instance(2);  // same key, different problem
  cache.insert(key_of(7), entry_for(stored, "PTAS"));
  EXPECT_FALSE(cache.lookup(key_of(7), probe).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // The entry itself is untouched and still serves the real owner.
  EXPECT_TRUE(cache.lookup(key_of(7), stored).has_value());
}

TEST(ResultCache, ReinsertKeepsTheExistingEntry) {
  // Two workers can race to solve one fingerprint; the second insert must
  // not clobber the first (both results are valid for the key).
  ResultCache cache(4);
  const Instance canonical = canonical_instance(1);
  cache.insert(key_of(1), entry_for(canonical, "first"));
  cache.insert(key_of(1), entry_for(canonical, "second"));
  const auto hit = cache.lookup(key_of(1), canonical);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->algorithm, "first");
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ResultCache, RejectsZeroCapacity) {
  EXPECT_THROW(ResultCache cache(0), InvalidArgumentError);
}

TEST(ResultCache, MirrorsCountersIntoAmbientMetrics) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Metrics metrics(1);
  {
    obs::MetricsScope scope(metrics);
    ResultCache cache(1);
    const Instance a = canonical_instance(1);
    const Instance b = canonical_instance(2);
    (void)cache.lookup(key_of(1), a);          // miss
    cache.insert(key_of(1), entry_for(a, "A"));
    (void)cache.lookup(key_of(1), a);          // hit
    cache.insert(key_of(2), entry_for(b, "B"));  // evicts A
  }
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceCacheMisses), 1u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceCacheHits), 1u);
  EXPECT_EQ(metrics.counter_total(obs::Counter::kServiceCacheEvictions), 1u);
}

}  // namespace
}  // namespace pcmax
