// The service's overload layer end to end: tiered load shedding, tenant
// quotas, request coalescing, breaker re-routing, and the structured
// internal-error path — all made deterministic with a gate FaultHandler
// that parks the worker at a chosen fault site while the test arranges the
// queue into the exact pressure state it wants to observe.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/instance_gen.hpp"
#include "service/solve_service.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

/// Blocks the FIRST hit of one site until release(); later hits pass. Lets
/// a test freeze a worker mid-request and build queue pressure behind it.
class GateHandler final : public FaultHandler {
 public:
  explicit GateHandler(const char* site) : site_(site) {}

  void on_hit(const char* site) override {
    if (std::strcmp(site, site_) != 0) return;
    std::unique_lock lock(mutex_);
    if (released_ || blocked_) return;
    blocked_ = true;
    entered_.notify_all();
    gate_.wait(lock, [&] { return released_; });
  }

  void wait_until_blocked() {
    std::unique_lock lock(mutex_);
    entered_.wait(lock, [&] { return blocked_; });
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    gate_.notify_all();
  }

 private:
  const char* site_;
  std::mutex mutex_;
  std::condition_variable entered_;
  std::condition_variable gate_;
  bool blocked_ = false;
  bool released_ = false;
};

/// Blocks the FIRST hit of one site until release() (like GateHandler) and
/// throws ResourceLimitError on hits [throw_from, throw_to]; every other
/// hit passes. Lets one test freeze a leader mid-solve AND deterministically
/// fail the requests dispatched behind it.
class GateThenThrowHandler final : public FaultHandler {
 public:
  GateThenThrowHandler(const char* site, std::uint64_t throw_from,
                       std::uint64_t throw_to)
      : site_(site), throw_from_(throw_from), throw_to_(throw_to) {}

  void on_hit(const char* site) override {
    if (std::strcmp(site, site_) != 0) return;
    const std::uint64_t hit =
        hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit == 1) {
      std::unique_lock lock(mutex_);
      blocked_ = true;
      entered_.notify_all();
      gate_.wait(lock, [&] { return released_; });
      return;
    }
    if (hit >= throw_from_ && hit <= throw_to_) {
      throw ResourceLimitError(resource_limit_message(
          std::string("test fault at '") + site_ + "'", hit - 1, hit));
    }
  }

  void wait_until_blocked() {
    std::unique_lock lock(mutex_);
    entered_.wait(lock, [&] { return blocked_; });
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    gate_.notify_all();
  }

 private:
  const char* site_;
  const std::uint64_t throw_from_;
  const std::uint64_t throw_to_;
  std::atomic<std::uint64_t> hits_{0};
  std::mutex mutex_;
  std::condition_variable entered_;
  std::condition_variable gate_;
  bool blocked_ = false;
  bool released_ = false;
};

Instance overload_instance(int seed) {
  return generate_instance(InstanceFamily::kUniform1To100, 3, 12, seed, 0);
}

/// Big enough that the PTAS reliably runs its bisection loop — the gated
/// coalescing tests park the leader at the "bisection.probe" site.
Instance ptas_instance(int seed) {
  return generate_instance(InstanceFamily::kUniform1To100, 5, 30, seed, 0);
}

// One frozen worker, a full queue behind it, then release: each drained
// request sees a deterministic queue depth, so the tiered admission layer
// walks the whole ladder — shed, heuristic, lite, full — in one cascade.
TEST(ServiceOverload, TieredPressureWalksTheWholeLadder) {
  GateHandler gate("service.request");
  FaultScope scope(gate);
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.shed_policy = ShedPolicy::kTiered;
  options.lite_pressure = 0.5;
  options.heavy_pressure = 0.75;
  options.shed_pressure = 1.0;
  options.breaker_enabled = false;  // isolate the pressure signal
  SolveService service(options);

  std::vector<SolveFuture> futures;
  futures.push_back(service.submit(SolveRequest{overload_instance(1)}));
  gate.wait_until_blocked();  // r0 is out of the queue, frozen in handle()
  for (int seed = 2; seed <= 5; ++seed) {  // r1..r4 fill the queue exactly
    futures.push_back(service.submit(SolveRequest{overload_instance(seed)}));
  }
  // r5 finds the queue full: shed at submit, resolved immediately.
  futures.push_back(service.submit(SolveRequest{overload_instance(6)}));
  SolveResponse overflow = futures.back().get();
  EXPECT_TRUE(overflow.shed);
  EXPECT_EQ(overflow.degradation_reason, "shed:queue-full");
  EXPECT_EQ(overflow.algorithm, "none");

  gate.release();
  std::vector<SolveResponse> responses;
  for (std::size_t i = 0; i + 1 < futures.size(); ++i) {
    responses.push_back(futures[i].get());
  }
  // r0 dispatched against depth 4/4 = 1.0 -> shed; r1 against 3/4 ->
  // heuristic; r2 against 2/4 -> lite; r3, r4 against low pressure -> full.
  EXPECT_EQ(responses[0].degradation_reason, "shed:pressure");
  EXPECT_TRUE(responses[0].shed);
  EXPECT_EQ(responses[1].degradation_reason, "pressure-heavy");
  EXPECT_FALSE(responses[1].shed);
  EXPECT_EQ(responses[2].degradation_reason, "pressure-lite");
  EXPECT_EQ(responses[3].degradation_reason, "none");
  EXPECT_EQ(responses[4].degradation_reason, "none");
  for (const SolveResponse& response : responses) {
    if (!response.shed) EXPECT_GT(response.makespan, 0);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_overload, 2u);  // shed:queue-full + shed:pressure
  EXPECT_EQ(stats.shed_quota, 0u);
  EXPECT_EQ(stats.requests, 6u);
}

TEST(ServiceOverload, TenantQuotaShedsOnlyTheCappedTenant) {
  GateHandler gate("service.request");
  FaultScope scope(gate);
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.tenant_weights = {{"burst", 1}, {"steady", 3}};
  // burst may hold 8*1/4 = 2 queue slots; steady 6; "" stays uncapped.
  SolveService service(options);

  const auto submit = [&](int seed, const std::string& tenant) {
    SolveRequest request{overload_instance(seed)};
    request.tenant = tenant;
    return service.submit(std::move(request));
  };
  std::vector<SolveFuture> kept;
  kept.push_back(submit(1, "burst"));
  gate.wait_until_blocked();  // the first burst request left the queue
  kept.push_back(submit(2, "burst"));
  kept.push_back(submit(3, "burst"));  // burst now holds its 2 slots
  SolveFuture over_quota = submit(4, "burst");
  SolveResponse shed = over_quota.get();  // resolved without queueing
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.degradation_reason, "shed:tenant-quota");
  EXPECT_EQ(shed.tenant, "burst");

  // Other tenants are untouched by burst's quota exhaustion.
  kept.push_back(submit(5, "steady"));
  kept.push_back(submit(6, ""));

  gate.release();
  for (SolveFuture& future : kept) {
    const SolveResponse response = future.get();
    EXPECT_FALSE(response.shed);
    EXPECT_GT(response.makespan, 0);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_quota, 1u);
  EXPECT_EQ(stats.shed_overload, 0u);
}

// Concurrent duplicates of one fingerprint share the leader's in-flight
// solve, and the shared responses are identical to an unloaded solve of
// the same instance.
TEST(ServiceOverload, CoalescingSharesOneInflightSolve) {
  const Instance instance = ptas_instance(7);

  // The canonical answer, from an idle single-worker service.
  SolveResponse canonical_response;
  {
    ServiceOptions options;
    options.workers = 1;
    SolveService service(options);
    canonical_response =
        service.submit(SolveRequest{instance}).get();
    ASSERT_EQ(canonical_response.degradation_reason, "none");
  }

  // Freeze the leader INSIDE its solve: leadership is registered before
  // run_solver, so every duplicate dispatched meanwhile must park.
  GateHandler gate("bisection.probe");
  FaultScope scope(gate);
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 32;
  SolveService service(options);

  std::vector<SolveFuture> futures;
  futures.push_back(service.submit(SolveRequest{instance}));
  gate.wait_until_blocked();
  constexpr int kFollowers = 7;
  for (int i = 0; i < kFollowers; ++i) {
    futures.push_back(service.submit(SolveRequest{instance}));
  }
  // Every follower probes the cache (miss) exactly once before parking:
  // misses reaching 1 + kFollowers means all of them are parked.
  while (service.stats().cache.misses <
         static_cast<std::uint64_t>(1 + kFollowers)) {
    std::this_thread::yield();
  }
  gate.release();

  int coalesced = 0;
  for (SolveFuture& future : futures) {
    const SolveResponse response = future.get();
    EXPECT_EQ(response.degradation_reason, "none");
    EXPECT_EQ(response.makespan, canonical_response.makespan);
    EXPECT_EQ(response.schedule.assignment(instance),
              canonical_response.schedule.assignment(instance));
    EXPECT_FALSE(response.cache_hit);
    if (response.coalesced) {
      ++coalesced;
      EXPECT_EQ(response.notes.at("cache"), "coalesced");
    }
    response.schedule.validate(instance);
  }
  EXPECT_EQ(coalesced, kFollowers);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kFollowers));
  // One solve, one cache store: misses reflect probes, not extra solves.
  EXPECT_EQ(stats.cache.misses, static_cast<std::uint64_t>(1 + kFollowers));
}

TEST(ServiceOverload, CoalescingOffSolvesEveryDuplicate) {
  const Instance instance = ptas_instance(8);
  GateHandler gate("bisection.probe");
  FaultScope scope(gate);
  ServiceOptions options;
  options.workers = 2;
  options.coalesce = false;
  options.cache_capacity = 0;  // no dedup at all: every request solves
  SolveService service(options);
  std::vector<SolveFuture> futures;
  futures.push_back(service.submit(SolveRequest{instance}));
  gate.wait_until_blocked();
  futures.push_back(service.submit(SolveRequest{instance}));
  gate.release();
  for (SolveFuture& future : futures) {
    const SolveResponse response = future.get();
    EXPECT_FALSE(response.coalesced);
    EXPECT_EQ(response.degradation_reason, "none");
  }
  EXPECT_EQ(service.stats().coalesced, 0u);
}

// An unknown (non-pcmax) exception on the worker becomes a structured
// internal-error response — never a dead worker or a hung future.
TEST(ServiceOverload, UnknownExceptionBecomesStructuredResponse) {
  FaultInjector injector("service.request", /*fire_at=*/1,
                         FaultInjector::Action::kThrowUnknown);
  FaultScope scope(injector);
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  const SolveResponse broken =
      service.submit(SolveRequest{overload_instance(9)}).get();
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(broken.degraded);
  EXPECT_TRUE(broken.shed);
  EXPECT_EQ(broken.degradation_reason, "internal-error");
  EXPECT_NE(broken.notes.at("internal_error").find("injected unknown fault"),
            std::string::npos);

  // The worker survived: the next request is served normally.
  const SolveResponse healthy =
      service.submit(SolveRequest{overload_instance(9)}).get();
  EXPECT_EQ(healthy.degradation_reason, "none");
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

// Typed pcmax errors still propagate through the future: the service must
// not convert caller bugs into results.
TEST(ServiceOverload, TypedErrorsStillPropagateThroughTheFuture) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  SolveRequest request{overload_instance(10)};
  // k = ceil(1/eps) = 100 blows the PTAS accuracy bound (< 64):
  // InvalidArgumentError from the worker thread.
  request.epsilon = 0.01;
  auto future = service.submit(std::move(request));
  EXPECT_THROW((void)future.get(), InvalidArgumentError);
  EXPECT_EQ(service.stats().internal_errors, 0u);
}

// Consecutive resource failures trip the breaker, open-breaker requests
// re-route to the cheap rung up front, and a probe closes it again.
TEST(ServiceOverload, BreakerTripsReroutesAndRecovers) {
  ServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 0;  // every request must attempt a solve
  options.breaker.failure_threshold = 2;
  options.breaker.open_rejects = 2;
  SolveService service(options);

  const auto degrade_reason = [&](int seed) {
    return service.submit(SolveRequest{ptas_instance(seed)})
        .get()
        .degradation_reason;
  };

  // Two full-fidelity attempts whose PTAS rung blows a resource limit:
  // the ladder degrades each to MULTIFIT/LPT with a "resource-limit: ..."
  // reason, which is exactly what feeds the breaker's failure streak.
  for (int i = 0; i < 2; ++i) {
    FaultInjector injector("bisection.probe", /*fire_at=*/1,
                           FaultInjector::Action::kThrow);
    FaultScope scope(injector);
    const SolveResponse response =
        service.submit(SolveRequest{ptas_instance(20 + i)}).get();
    EXPECT_TRUE(injector.fired());
    EXPECT_TRUE(response.degraded);
    EXPECT_EQ(response.degradation_reason.rfind("resource-limit", 0), 0u);
  }
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kOpen);
  EXPECT_GE(service.stats().breaker.trips, 1u);

  // While open, full-fidelity requests are re-routed without an attempt.
  EXPECT_EQ(degrade_reason(30), "breaker-open:ptas");
  EXPECT_EQ(degrade_reason(31), "breaker-open:ptas");
  // Cooldown (2 rejects) served: the next request probes and succeeds.
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kHalfOpen);
  EXPECT_EQ(degrade_reason(32), "none");
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kClosed);
  EXPECT_GE(service.stats().breaker.closes, 1u);
}

// A half-open probe that dies to a NON-resource exception must abandon its
// probe slot (the BreakerAttempt guard), never leak it: before the guard,
// the leaked slot made allow() reject every future attempt, disabling the
// full-fidelity tier forever.
TEST(ServiceOverload, UnknownExceptionDuringProbeReleasesTheSlot) {
  ServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 0;  // every request must attempt a solve
  options.breaker.failure_threshold = 2;
  options.breaker.open_rejects = 2;
  SolveService service(options);

  // Trip: two resource failures on the PTAS rung.
  for (int i = 0; i < 2; ++i) {
    FaultInjector injector("bisection.probe", /*fire_at=*/1,
                           FaultInjector::Action::kThrow);
    FaultScope scope(injector);
    (void)service.submit(SolveRequest{ptas_instance(40 + i)}).get();
  }
  ASSERT_EQ(service.breaker().state("ptas"), BreakerState::kOpen);
  // Serve the cooldown: two rerouted requests.
  for (int seed = 42; seed <= 43; ++seed) {
    (void)service.submit(SolveRequest{ptas_instance(seed)}).get();
  }
  ASSERT_EQ(service.breaker().state("ptas"), BreakerState::kHalfOpen);

  // The probe throws an unknown (non-pcmax) exception mid-solve: the
  // request resolves as a structured internal error, and the probe slot is
  // abandoned, not leaked.
  {
    FaultInjector injector("bisection.probe", /*fire_at=*/1,
                           FaultInjector::Action::kThrowUnknown);
    FaultScope scope(injector);
    const SolveResponse broken =
        service.submit(SolveRequest{ptas_instance(44)}).get();
    EXPECT_EQ(broken.degradation_reason, "internal-error");
  }
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kHalfOpen);
  EXPECT_GE(service.breaker().stats("ptas").abandons, 1u);

  // The slot is free: the next attempt probes, succeeds, and closes.
  const SolveResponse healthy =
      service.submit(SolveRequest{ptas_instance(45)}).get();
  EXPECT_EQ(healthy.degradation_reason, "none");
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kClosed);
}

// A duplicate admitted as the half-open PROBE that then parks behind an
// in-flight leader must release its probe slot as it parks — the leader
// owns the solve's verdict, and a parked follower reports none.
TEST(ServiceOverload, ParkedFollowerReleasesItsHalfOpenProbeSlot) {
  // Hit 1 of bisection.probe freezes the leader mid-solve; hits 2-3 throw,
  // tripping the breaker behind it; later hits pass.
  GateThenThrowHandler handler("bisection.probe", /*throw_from=*/2,
                               /*throw_to=*/3);
  FaultScope scope(handler);
  ServiceOptions options;
  options.workers = 2;
  options.cache_capacity = 0;
  options.breaker.failure_threshold = 2;
  options.breaker.open_rejects = 2;
  SolveService service(options);

  // The leader is admitted while the breaker is CLOSED and freezes inside
  // its solve, holding leadership of its fingerprint.
  const Instance shared = ptas_instance(50);
  SolveFuture leader = service.submit(SolveRequest{shared});
  handler.wait_until_blocked();

  // Two resource failures behind it trip the breaker...
  for (int seed = 51; seed <= 52; ++seed) {
    const SolveResponse failed =
        service.submit(SolveRequest{ptas_instance(seed)}).get();
    EXPECT_EQ(failed.degradation_reason.rfind("resource-limit", 0), 0u);
  }
  ASSERT_EQ(service.breaker().state("ptas"), BreakerState::kOpen);
  // ...and two rerouted requests serve the cooldown.
  for (int seed = 53; seed <= 54; ++seed) {
    EXPECT_EQ(service.submit(SolveRequest{ptas_instance(seed)})
                  .get()
                  .degradation_reason,
              "breaker-open:ptas");
  }
  ASSERT_EQ(service.breaker().state("ptas"), BreakerState::kHalfOpen);

  // The duplicate is admitted as probe #1, finds the frozen leader in
  // flight, and parks — abandoning the probe slot on the way.
  SolveFuture follower = service.submit(SolveRequest{shared});
  while (service.breaker().stats("ptas").abandons == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kHalfOpen);

  // The slot is free again: a fresh request is admitted as probe #2,
  // succeeds, and closes the breaker (with the leak, every attempt from
  // here on was rejected with "breaker-open:ptas").
  const SolveResponse probe =
      service.submit(SolveRequest{ptas_instance(55)}).get();
  EXPECT_EQ(probe.degradation_reason, "none");
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kClosed);
  EXPECT_EQ(service.breaker().stats("ptas").probes, 2u);

  handler.release();
  const SolveResponse led = leader.get();
  EXPECT_EQ(led.degradation_reason, "none");
  const SolveResponse shared_result = follower.get();
  EXPECT_TRUE(shared_result.coalesced);
  EXPECT_EQ(shared_result.makespan, led.makespan);
}

// Under the tiered policy a nearly spent deadline weighs at least
// lite_pressure: the request degrades itself ("deadline-near", like the
// static policy) instead of launching a doomed PTAS whose certain failure
// would feed the breaker's streak and trip it for everyone else.
TEST(ServiceOverload, TieredDeadlineNearDegradesWithoutFeedingTheBreaker) {
  ServiceOptions options;
  options.workers = 1;
  options.cache_capacity = 0;
  options.shed_policy = ShedPolicy::kTiered;
  options.deadline_near_ms = 1'000'000;  // any finite budget is "near"
  SolveService service(options);
  for (int seed = 60; seed < 63; ++seed) {
    SolveRequest request{overload_instance(seed)};
    request.time_limit_ms = 5;
    const SolveResponse response = service.submit(std::move(request)).get();
    EXPECT_EQ(response.degradation_reason, "deadline-near");
    EXPECT_FALSE(response.shed);
    EXPECT_GT(response.makespan, 0);
  }
  // The doomed requests never reached the full-fidelity rung: no failure
  // streak, no trip — the breaker stays closed for everyone else.
  const BreakerKeyStats breaker = service.breaker().stats("ptas");
  EXPECT_EQ(breaker.failures, 0u);
  EXPECT_EQ(breaker.trips, 0u);
  EXPECT_EQ(service.breaker().state("ptas"), BreakerState::kClosed);
}

}  // namespace
}  // namespace pcmax
