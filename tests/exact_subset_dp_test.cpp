#include "exact/subset_dp.hpp"

#include <gtest/gtest.h>

#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "exact/exact.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(SubsetDp, SingleMachineIsTheTotal) {
  const Instance instance(1, {3, 5, 8});
  const SolverResult r = SubsetDpSolver().solve(instance);
  EXPECT_EQ(r.makespan, 16);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(SubsetDp, PerfectPartitionOnTwoMachines) {
  const Instance instance(2, {3, 1, 1, 2, 2, 1});  // total 10 -> 5/5
  const SolverResult r = SubsetDpSolver().solve(instance);
  r.schedule.validate(instance);
  EXPECT_EQ(r.makespan, 5);
}

TEST(SubsetDp, ImperfectPartitionRoundsUp) {
  const Instance instance(2, {5, 4, 3});  // total 12 but best split 7/5
  const SolverResult r = SubsetDpSolver().solve(instance);
  EXPECT_EQ(r.makespan, 7);
  EXPECT_EQ(brute_force_optimum(instance), 7);
}

TEST(SubsetDp, ThreeMachineKnownInstance) {
  const Instance instance(3, {5, 4, 3, 3, 3});  // OPT = 7 (see baselines test)
  const SolverResult r = SubsetDpSolver().solve(instance);
  r.schedule.validate(instance);
  EXPECT_EQ(r.makespan, 7);
}

TEST(SubsetDp, MatchesBruteForceOnTwoMachines) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 2, 12, 77, index);
      const SolverResult r = SubsetDpSolver().solve(instance);
      r.schedule.validate(instance);
      EXPECT_EQ(r.makespan, brute_force_optimum(instance))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(SubsetDp, MatchesBruteForceOnThreeMachines) {
  for (const InstanceFamily family :
       {InstanceFamily::kUniform1To10, InstanceFamily::kUniform1To2M1}) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 10, 31, index);
      const SolverResult r = SubsetDpSolver().solve(instance);
      r.schedule.validate(instance);
      EXPECT_EQ(r.makespan, brute_force_optimum(instance))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(SubsetDp, CrossChecksTheBranchAndBoundSolver) {
  // Two independent exact algorithms must agree on larger instances than
  // brute force can handle.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 2, 60, 3, 0);
  const SolverResult dp = SubsetDpSolver().solve(instance);
  const SolverResult bb = ExactSolver().solve(instance);
  ASSERT_TRUE(bb.proven_optimal);
  EXPECT_EQ(dp.makespan, bb.makespan);
}

TEST(SubsetDp, RejectsTooManyMachines) {
  const Instance instance(4, {1, 2, 3, 4});
  EXPECT_THROW((void)SubsetDpSolver().solve(instance), InvalidArgumentError);
}

TEST(SubsetDp, EnforcesTheTimeBudget) {
  const Instance small_budget_instance(2, {600, 600});
  try {
    (void)SubsetDpSolver(1000).solve(small_budget_instance);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    // Uniform limit-message format: names both limit and observed demand.
    EXPECT_EQ(std::string(e.what()),
              "subset-DP total processing time: demand 1200 exceeds limit 1000");
  }
  // 3-machine instances face the quadratic budget.
  const Instance three(3, {600, 600, 600});
  EXPECT_THROW((void)SubsetDpSolver(1'000'000).solve(three),
               ResourceLimitError);
}

TEST(SubsetDp, LargeUnitJobsBalancePerfectly) {
  const Instance instance(3, std::vector<Time>(30, 7));  // 10 per machine
  const SolverResult r = SubsetDpSolver().solve(instance);
  EXPECT_EQ(r.makespan, 70);
}

}  // namespace
}  // namespace pcmax
