#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

CliParser make_parser() {
  CliParser cli("test tool");
  cli.add_int("n", 10, "number of things");
  cli.add_double("eps", 0.3, "accuracy");
  cli.add_string("family", "U(1,100)", "instance family");
  cli.add_bool("verbose", false, "chatty output");
  return cli;
}

TEST(CliParser, DefaultsApplyWithoutArguments) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.3);
  EXPECT_EQ(cli.get_string("family"), "U(1,100)");
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliParser, ParsesSpaceSeparatedValues) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n", "42", "--eps", "0.1"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.1);
}

TEST(CliParser, ParsesEqualsForm) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n=7", "--family=U(1,10)", "--verbose=true"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
  EXPECT_EQ(cli.get_string("family"), "U(1,10)");
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, BareBoolFlagSetsTrue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, NegativeNumbers) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n", "-3", "--eps", "-0.5"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), -0.5);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), InvalidArgumentError);
}

TEST(CliParser, PositionalArgumentThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW((void)cli.parse(2, argv), InvalidArgumentError);
}

TEST(CliParser, MissingValueThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW((void)cli.parse(2, argv), InvalidArgumentError);
}

TEST(CliParser, MalformedNumbersThrow) {
  {
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--n", "abc"};
    EXPECT_THROW((void)cli.parse(3, argv), InvalidArgumentError);
  }
  {
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--eps", "1.2.3"};
    EXPECT_THROW((void)cli.parse(3, argv), InvalidArgumentError);
  }
  {
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--verbose=maybe"};
    EXPECT_THROW((void)cli.parse(2, argv), InvalidArgumentError);
  }
}

TEST(CliParser, TypeMismatchedAccessThrows) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_double("n"), InvalidArgumentError);
  EXPECT_THROW((void)cli.get_int("never-registered"), InvalidArgumentError);
}

TEST(CliParser, DuplicateRegistrationThrows) {
  CliParser cli("doc");
  cli.add_int("x", 1, "first");
  EXPECT_THROW(cli.add_int("x", 2, "dup"), InvalidArgumentError);
}

TEST(CliParser, UsageListsFlagsAndDefaults) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
  EXPECT_NE(usage.find("instance family"), std::string::npos);
}

TEST(CliParser, LastOccurrenceWins) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--n", "1", "--n", "2"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("n"), 2);
}

}  // namespace
}  // namespace pcmax
