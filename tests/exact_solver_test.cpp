#include "exact/exact.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/bin_feasibility.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

// ------------------------------------------------------------ BruteForce --

TEST(BruteForce, SolvesHandVerifiedInstances) {
  EXPECT_EQ(brute_force_optimum(Instance(2, {3, 3, 2, 2, 2})), 6);
  EXPECT_EQ(brute_force_optimum(Instance(3, {1, 1, 1, 1, 1, 3})), 3);
  EXPECT_EQ(brute_force_optimum(Instance(2, {10})), 10);
  EXPECT_EQ(brute_force_optimum(Instance(1, {2, 3, 4})), 9);
  EXPECT_EQ(brute_force_optimum(Instance(4, {5, 5, 5, 5})), 5);
}

TEST(BruteForce, ProducesValidOptimalSchedules) {
  const Instance instance(3, {7, 5, 4, 4, 3, 2});
  const SolverResult result = BruteForceSolver().solve(instance);
  result.schedule.validate(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.makespan, result.schedule.makespan(instance));
  EXPECT_GE(result.makespan, makespan_lower_bound(instance));
}

TEST(BruteForce, GuardsAgainstLargeInstances) {
  const Instance instance(2, std::vector<Time>(20, 1));
  EXPECT_THROW((void)BruteForceSolver().solve(instance), InvalidArgumentError);
  EXPECT_NO_THROW((void)BruteForceSolver(20).solve(instance));
}

// ------------------------------------------------------------ pack_within -

TEST(PackWithin, FeasibleExactFit) {
  const Instance instance(2, {3, 3, 2, 2, 2});
  Schedule witness(2);
  FeasibilityStats stats;
  EXPECT_EQ(pack_within(instance, 6, {}, &witness, &stats), Feasibility::kFeasible);
  witness.validate(instance);
  EXPECT_LE(witness.makespan(instance), 6);
  EXPECT_GE(stats.nodes, 1u);
}

TEST(PackWithin, InfeasibleBelowOptimum) {
  const Instance instance(2, {3, 3, 2, 2, 2});  // OPT = 6
  EXPECT_EQ(pack_within(instance, 5, {}, nullptr, nullptr),
            Feasibility::kInfeasible);
}

TEST(PackWithin, InfeasibleWhenLongestJobExceedsCapacity) {
  const Instance instance(3, {10, 1});
  FeasibilityStats stats;
  EXPECT_EQ(pack_within(instance, 9, {}, nullptr, &stats),
            Feasibility::kInfeasible);
  EXPECT_EQ(stats.nodes, 0u);  // rejected before any search
}

TEST(PackWithin, UnknownWhenNodeBudgetIsExhausted) {
  // A packing-hard instance with a 1-node budget cannot be decided.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10N, 4, 24, 1, 0);
  FeasibilitySearchLimits limits;
  limits.max_nodes = 1;
  const Time tight = makespan_lower_bound(instance);
  const Feasibility answer = pack_within(instance, tight, limits, nullptr, nullptr);
  EXPECT_NE(answer, Feasibility::kInfeasible);  // cannot *prove* anything
}

TEST(PackWithin, AgreesWithBruteForceAroundTheOptimum) {
  for (std::uint64_t index = 0; index < 6; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 3, 10, 7, index);
    const Time opt = brute_force_optimum(instance);
    EXPECT_EQ(pack_within(instance, opt, {}, nullptr, nullptr),
              Feasibility::kFeasible)
        << "#" << index;
    if (opt > makespan_lower_bound(instance)) {
      // opt-1 can still be >= LB; it must then be proven infeasible.
      EXPECT_EQ(pack_within(instance, opt - 1, {}, nullptr, nullptr),
                Feasibility::kInfeasible)
          << "#" << index;
    }
  }
}

// ------------------------------------------------------------ ExactSolver -

TEST(ExactSolver, MatchesBruteForceAcrossFamilies) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 11, 9, index);
      const SolverResult exact = ExactSolver().solve(instance);
      exact.schedule.validate(instance);
      EXPECT_TRUE(exact.proven_optimal) << family_name(family);
      EXPECT_EQ(exact.makespan, brute_force_optimum(instance))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(ExactSolver, SolvesPaperSizedInstancesOnEasyFamilies) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 10, 50, 2, 0);
  const SolverResult result = ExactSolver().solve(instance);
  result.schedule.validate(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GE(result.makespan, makespan_lower_bound(instance));
}

TEST(ExactSolver, DegradesGracefullyUnderBudget) {
  ExactSolverOptions options;
  options.probe_limits.max_nodes = 10;
  options.max_total_seconds = 0.001;
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10N, 5, 30, 3, 0);
  const SolverResult result = ExactSolver(options).solve(instance);
  result.schedule.validate(instance);  // incumbent is still a full schedule
  EXPECT_GE(result.makespan, makespan_lower_bound(instance));
}

TEST(ExactSolver, ReportsSearchStats) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 4, 0);
  const SolverResult result = ExactSolver().solve(instance);
  EXPECT_GE(result.stats.at("probes"), 0.0);
  EXPECT_GE(result.stats.at("lower_bound"), 1.0);
  EXPECT_EQ(result.stats.at("lower_bound"), static_cast<double>(result.makespan));
}

TEST(ExactSolver, NameIsIP) {
  EXPECT_EQ(ExactSolver().name(), "IP");
}

TEST(ExactSolver, OptimalEqualsLowerBoundWhenJobsDivideEvenly) {
  const Instance instance(3, {4, 4, 4, 4, 4, 4});  // 2 per machine
  const SolverResult result = ExactSolver().solve(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.makespan, 8);
}

}  // namespace
}  // namespace pcmax
