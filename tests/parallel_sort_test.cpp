#include "parallel/parallel_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pcmax {
namespace {

std::vector<long> random_values(std::size_t n, std::uint64_t seed,
                                long lo = -1000, long hi = 1000) {
  Xoshiro256StarStar rng(seed);
  std::vector<long> values(n);
  for (auto& v : values) v = uniform_int(rng, lo, hi);
  return values;
}

TEST(ParallelSort, MatchesStdStableSortAcrossSizesAndWorkers) {
  for (const unsigned workers : {1u, 2u, 3u, 4u, 7u}) {
    ThreadPoolExecutor executor(workers);
    for (const std::size_t n : {0u, 1u, 2u, 5u, 17u, 100u, 1000u, 4097u}) {
      std::vector<long> values = random_values(n, n + workers);
      std::vector<long> expected = values;
      std::stable_sort(expected.begin(), expected.end());
      parallel_stable_sort(values, executor, std::less<>());
      ASSERT_EQ(values, expected) << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(ParallelSort, RespectsCustomComparators) {
  ThreadPoolExecutor executor(3);
  std::vector<long> values = random_values(500, 9);
  std::vector<long> expected = values;
  std::stable_sort(expected.begin(), expected.end(), std::greater<>());
  parallel_stable_sort(values, executor, std::greater<>());
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, IsStable) {
  // Sort pairs by first component only; second components record the
  // original order and must remain ascending within equal keys.
  struct Item {
    int key;
    int index;
    bool operator==(const Item&) const = default;
  };
  Xoshiro256StarStar rng(17);
  std::vector<Item> items;
  for (int i = 0; i < 2000; ++i) {
    items.push_back(Item{static_cast<int>(uniform_int(rng, 0, 9)), i});
  }
  std::vector<Item> expected = items;
  auto by_key = [](const Item& a, const Item& b) { return a.key < b.key; };
  std::stable_sort(expected.begin(), expected.end(), by_key);

  ThreadPoolExecutor executor(4);
  parallel_stable_sort(items, executor, by_key);
  EXPECT_EQ(items, expected);
}

TEST(ParallelSort, AlreadySortedAndReversedInputs) {
  ThreadPoolExecutor executor(4);
  std::vector<long> ascending(1000);
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<long>(i);
  }
  std::vector<long> expected = ascending;
  parallel_stable_sort(ascending, executor, std::less<>());
  EXPECT_EQ(ascending, expected);

  std::vector<long> descending(expected.rbegin(), expected.rend());
  parallel_stable_sort(descending, executor, std::less<>());
  EXPECT_EQ(descending, expected);
}

TEST(ParallelSort, AllEqualElements) {
  ThreadPoolExecutor executor(3);
  std::vector<long> values(777, 42);
  parallel_stable_sort(values, executor, std::less<>());
  for (long v : values) EXPECT_EQ(v, 42);
}

TEST(ParallelSort, WorksWithSequentialExecutor) {
  SequentialExecutor executor;
  std::vector<long> values = random_values(300, 21);
  std::vector<long> expected = values;
  std::stable_sort(expected.begin(), expected.end());
  parallel_stable_sort(values, executor, std::less<>());
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, SortsStringsByLength) {
  ThreadPoolExecutor executor(2);
  std::vector<std::string> words{"dddd", "a", "ccc", "bb", "eee", "f"};
  parallel_stable_sort(words, executor,
                       [](const std::string& a, const std::string& b) {
                         return a.size() < b.size();
                       });
  EXPECT_EQ(words, (std::vector<std::string>{"a", "f", "bb", "ccc", "eee",
                                             "dddd"}));
}

}  // namespace
}  // namespace pcmax
