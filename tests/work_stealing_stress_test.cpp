// Contention stress for the work-stealing pool, written for the sanitizer
// builds (`ctest -L sanitize` under PCMAX_SANITIZE=thread): steal-heavy task
// graphs, repeated short episodes, concurrent external callers hitting one
// pool, cancellation racing mid-graph, and construct/destroy churn. The
// assertions are deliberately coarse (exact-once coverage, conserved sums) —
// the point is to give TSan/ASan interleavings to chew on, not to re-test
// the functional contract (parallel_work_stealing_test does that).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/work_stealing.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

TEST(WorkStealingStress, RepeatedShortEpisodesOnOnePool) {
  WorkStealingPool pool(4);
  for (int episode = 0; episode < 200; ++episode) {
    const std::size_t n = 1 + static_cast<std::size_t>(episode % 37);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for_1d(
        n,
        [&](std::size_t begin, std::size_t end, unsigned) {
          std::uint64_t local = 0;
          for (std::size_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        },
        /*chunk=*/1);
    ASSERT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
  }
}

TEST(WorkStealingStress, SkewedRangesForceSliceStealing) {
  WorkStealingPool pool(8);
  Xoshiro256StarStar rng(0x57EA1);
  for (int episode = 0; episode < 30; ++episode) {
    const std::size_t n = 64 + static_cast<std::size_t>(uniform_int(rng, 0, 192));
    const auto heavy = static_cast<std::size_t>(uniform_int(rng, 0, 63));
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_1d(
        n,
        [&](std::size_t begin, std::size_t end, unsigned) {
          for (std::size_t i = begin; i < end; ++i) {
            if (i == heavy) {
              volatile std::uint64_t sink = 0;
              for (std::uint64_t k = 0; k < 50000; ++k) sink = sink + k;
            }
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        /*chunk=*/1);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(WorkStealingStress, WideTaskGraphsRetireEveryTaskOnce) {
  // Binary-tree spawn graphs: every non-leaf spawns two children, which
  // keeps deques non-empty and thieves busy. Repeat on one pool so deque
  // reset/reuse between episodes is exercised too.
  WorkStealingPool pool(8);
  for (int episode = 0; episode < 20; ++episode) {
    const std::uint32_t bound = 1u << 10;
    std::vector<std::atomic<int>> ran(bound);
    const std::uint32_t roots[] = {0};
    pool.run_tasks(roots, bound,
                   [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                     ran[task].fetch_add(1, std::memory_order_relaxed);
                     const std::uint32_t left = 2 * task + 1;
                     const std::uint32_t right = 2 * task + 2;
                     if (left < bound) ctx.spawn(left);
                     if (right < bound) ctx.spawn(right);
                   });
    for (std::uint32_t t = 0; t < bound; ++t) ASSERT_EQ(ran[t].load(), 1) << t;
  }
}

TEST(WorkStealingStress, DependencyCountersUnderContention) {
  // A dense layered DAG driven by atomic dependency counters — the DP
  // sweep's protocol with every layer fully connected to the next, so each
  // counter is decremented by many concurrent predecessors.
  constexpr std::uint32_t kLayers = 16;
  constexpr std::uint32_t kWidth = 16;
  constexpr std::uint32_t kTasks = kLayers * kWidth;
  WorkStealingPool pool(8);
  for (int episode = 0; episode < 10; ++episode) {
    std::vector<std::atomic<std::uint32_t>> deps(kTasks);
    for (std::uint32_t t = 0; t < kTasks; ++t) {
      deps[t].store(t < kWidth ? 0 : kWidth, std::memory_order_relaxed);
    }
    std::vector<std::atomic<int>> ran(kTasks);
    std::vector<std::uint32_t> roots(kWidth);
    for (std::uint32_t t = 0; t < kWidth; ++t) roots[t] = t;
    pool.run_tasks(roots, kTasks,
                   [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                     ran[task].fetch_add(1, std::memory_order_relaxed);
                     const std::uint32_t layer = task / kWidth;
                     if (layer + 1 == kLayers) return;
                     for (std::uint32_t j = 0; j < kWidth; ++j) {
                       const std::uint32_t succ = (layer + 1) * kWidth + j;
                       if (deps[succ].fetch_sub(1, std::memory_order_acq_rel) ==
                           1) {
                         ctx.spawn(succ);
                       }
                     }
                   });
    for (std::uint32_t t = 0; t < kTasks; ++t) ASSERT_EQ(ran[t].load(), 1);
    for (std::uint32_t t = kWidth; t < kTasks; ++t) ASSERT_EQ(deps[t].load(), 0u);
  }
}

TEST(WorkStealingStress, ConcurrentExternalCallersSerialise) {
  // Multiple plain threads calling into ONE pool: run_episode must serialise
  // them (the pool's workers only ever see one episode at a time).
  WorkStealingPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kEpisodesPerCaller = 25;
  std::atomic<std::uint64_t> grand_total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int e = 0; e < kEpisodesPerCaller; ++e) {
        const std::size_t n = 17 + static_cast<std::size_t>((c * 31 + e) % 40);
        std::atomic<std::uint64_t> local{0};
        pool.parallel_for_1d(n, [&](std::size_t begin, std::size_t end,
                                    unsigned) {
          local.fetch_add(end - begin, std::memory_order_relaxed);
        });
        ASSERT_EQ(local.load(), n);
        grand_total.fetch_add(n, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_GT(grand_total.load(), 0u);
}

TEST(WorkStealingStress, CancellationRacesMidGraph) {
  // A different worker requests cancellation while the graph is spawning:
  // every episode must end in CancelledError with the pool intact.
  WorkStealingPool pool(4);
  for (int episode = 0; episode < 50; ++episode) {
    const CancellationToken token = CancellationToken::make();
    std::atomic<int> ran{0};
    const std::uint32_t roots[] = {0};
    try {
      pool.run_tasks(
          roots, 1u << 16,
          [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
            const int seen = ran.fetch_add(1, std::memory_order_relaxed);
            if (seen == 20 + episode % 13) token.request_cancel();
            const std::uint32_t left = 2 * task + 1;
            const std::uint32_t right = 2 * task + 2;
            if (left < (1u << 16)) ctx.spawn(left);
            if (right < (1u << 16)) ctx.spawn(right);
          },
          token);
      // Small graphs can retire entirely before the cancel lands; that is a
      // legal outcome of the race.
    } catch (const CancelledError&) {
    }
    ASSERT_GT(ran.load(), 0);
  }
  // The pool survives all of it.
  std::atomic<int> count{0};
  pool.parallel_for_1d(64, [&](std::size_t begin, std::size_t end, unsigned) {
    count.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(WorkStealingStress, ErrorsRaceCleanShutdownOfEpisodes) {
  WorkStealingPool pool(4);
  for (int episode = 0; episode < 50; ++episode) {
    EXPECT_THROW(
        pool.parallel_for_1d(
            128,
            [&](std::size_t begin, std::size_t end, unsigned) {
              for (std::size_t i = begin; i < end; ++i) {
                if (i == static_cast<std::size_t>(episode % 128)) {
                  throw ResourceLimitError("stress fault");
                }
              }
            },
            /*chunk=*/1),
        ResourceLimitError);
  }
}

TEST(WorkStealingStress, ConstructRunDestroyChurn) {
  // Pool lifetime churn: build, run one episode, destroy — repeatedly and
  // across thread counts. Races between the last episode's wind-down and the
  // destructor's drain-before-join show up here under TSan.
  for (int round = 0; round < 40; ++round) {
    const unsigned threads = 1 + static_cast<unsigned>(round % 4);
    WorkStealingPool pool(threads);
    std::atomic<int> count{0};
    const std::uint32_t roots[] = {0};
    pool.run_tasks(roots, 64,
                   [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                     count.fetch_add(1, std::memory_order_relaxed);
                     if (task + 1 < 64) ctx.spawn(task + 1);
                   });
    ASSERT_EQ(count.load(), 64);
    // Destructor runs immediately after the episode returns.
  }
}

}  // namespace
}  // namespace pcmax
