#include "parallel/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.participants(), 1u);
}

TEST(Barrier, RejectsZeroParticipants) {
  EXPECT_THROW(Barrier(0), InvalidArgumentError);
}

TEST(Barrier, SynchronisesPhases) {
  // Each thread increments a phase-local counter; after the barrier every
  // thread must observe the full count of the previous phase. A violation
  // means the barrier released early.
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 200;
  Barrier barrier(kThreads);
  std::vector<std::atomic<int>> counts(kPhases);
  std::atomic<int> violations{0};

  auto body = [&] {
    for (int phase = 0; phase < kPhases; ++phase) {
      counts[static_cast<std::size_t>(phase)].fetch_add(1);
      barrier.arrive_and_wait();
      if (counts[static_cast<std::size_t>(phase)].load() !=
          static_cast<int>(kThreads)) {
        violations.fetch_add(1);
      }
      barrier.arrive_and_wait();  // keep phases aligned before the next one
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(body);
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(Barrier, IsReusableBackToBack) {
  // Rapid reuse without any work between cycles exercises the generation
  // counter: a fast thread must not consume a slot of the previous cycle.
  constexpr unsigned kThreads = 8;
  Barrier barrier(kThreads);
  std::atomic<long> total{0};

  auto body = [&] {
    for (int i = 0; i < 500; ++i) {
      barrier.arrive_and_wait();
      total.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(body);
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 500L * kThreads);
}

}  // namespace
}  // namespace pcmax
