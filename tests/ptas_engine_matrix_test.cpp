// Full-matrix equivalence sweep: every DP engine x kernel x epsilon x
// speculation width must produce schedules with identical makespans on the
// same instance — the strongest statement of the paper's "same guarantees"
// claim this library can test mechanically.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"

namespace pcmax {
namespace {

using MatrixParam = std::tuple<DpEngine, DpKernel, double, unsigned>;

class PtasEngineMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PtasEngineMatrix, MatchesTheReferenceMakespan) {
  const auto [engine, kernel, epsilon, speculation] = GetParam();

  ThreadPoolExecutor executor(2);
  for (const InstanceFamily family :
       {InstanceFamily::kUniform1To100, InstanceFamily::kUniformMTo2M1}) {
    const Instance instance = generate_instance(family, 4, 18, 2027, 0);

    // Reference: plain sequential bisection, global kernel.
    PtasOptions reference_options;
    reference_options.epsilon = epsilon;
    const Time reference =
        PtasSolver(reference_options).solve(instance).makespan;

    PtasOptions options;
    options.epsilon = epsilon;
    options.engine = engine;
    options.kernel = kernel;
    options.executor = &executor;
    options.spmd_threads = 2;
    options.speculation = speculation;
    const SolverResult result = PtasSolver(options).solve(instance);
    result.schedule.validate(instance);

    if (speculation == 1) {
      // Identical search path -> identical makespan.
      EXPECT_EQ(result.makespan, reference) << family_name(family);
    } else {
      // Multisection may legitimately settle on a different (equally valid)
      // T*; the guarantee still binds both to (1+eps) * T* <= (1+eps) * OPT,
      // and on these instances rounded feasibility is monotone so the
      // makespans agree anyway — assert the weaker, always-true property
      // plus equality, which holds empirically for this fixed seed.
      EXPECT_EQ(result.makespan, reference) << family_name(family);
    }
  }
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [engine, kernel, epsilon, speculation] = info.param;
  std::string name = dp_engine_name(engine);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += kernel == DpKernel::kGlobalConfigs ? "_global" : "_perentry";
  name += "_e" + std::to_string(static_cast<int>(epsilon * 100));
  name += "_w" + std::to_string(speculation);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PtasEngineMatrix,
    ::testing::Combine(
        ::testing::Values(DpEngine::kBottomUp, DpEngine::kParallelScan,
                          DpEngine::kParallelBucketed, DpEngine::kSpmd),
        ::testing::Values(DpKernel::kGlobalConfigs, DpKernel::kPerEntryEnum),
        ::testing::Values(0.5, 0.3),
        ::testing::Values(1u, 3u)),
    matrix_name);

// Top-down only supports the global kernel; cover it separately.
INSTANTIATE_TEST_SUITE_P(
    TopDown, PtasEngineMatrix,
    ::testing::Combine(::testing::Values(DpEngine::kTopDown),
                       ::testing::Values(DpKernel::kGlobalConfigs),
                       ::testing::Values(0.5, 0.3), ::testing::Values(1u, 3u)),
    matrix_name);

}  // namespace
}  // namespace pcmax
