#include "mip/lp.hpp"

#include <gtest/gtest.h>

#include "mip/pcmax_ip.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

LpConstraint row(std::vector<double> coeffs, Relation relation, double rhs) {
  LpConstraint con;
  con.coeffs = std::move(coeffs);
  con.relation = relation;
  con.rhs = rhs;
  return con;
}

TEST(SimplexLp, SolvesATextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // -> optimum 36 at (2, 6). Expressed as minimisation of -3x - 5y.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3, -5};
  lp.constraints.push_back(row({1, 0}, Relation::kLessEqual, 4));
  lp.constraints.push_back(row({0, 2}, Relation::kLessEqual, 12));
  lp.constraints.push_back(row({3, 2}, Relation::kLessEqual, 18));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
}

TEST(SimplexLp, HandlesEqualityConstraints) {
  // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2), objective 5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.constraints.push_back(row({1, 1}, Relation::kEqual, 5));
  lp.constraints.push_back(row({1, -1}, Relation::kEqual, 1));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 3.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 2.0, 1e-9);
}

TEST(SimplexLp, HandlesGreaterEqualAndMixedRows) {
  // min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3 -> x=3, y=1, objective 9.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2, 3};
  lp.constraints.push_back(row({1, 1}, Relation::kGreaterEqual, 4));
  lp.constraints.push_back(row({1, 0}, Relation::kLessEqual, 3));
  lp.constraints.push_back(row({0, 1}, Relation::kLessEqual, 3));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 9.0, 1e-9);
}

TEST(SimplexLp, HandlesNegativeRhsByFlippingRows) {
  // min x s.t. -x <= -3  (i.e. x >= 3) -> 3.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(row({-1}, Relation::kLessEqual, -3));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
}

TEST(SimplexLp, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(row({1}, Relation::kLessEqual, 1));
  lp.constraints.push_back(row({1}, Relation::kGreaterEqual, 2));
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexLp, DetectsUnboundedness) {
  // min -x s.t. x >= 1: x can grow forever.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1};
  lp.constraints.push_back(row({1}, Relation::kGreaterEqual, 1));
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexLp, HandlesDegenerateTies) {
  // Multiple optimal vertices; Bland's rule must terminate.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.constraints.push_back(row({1, 1}, Relation::kGreaterEqual, 2));
  lp.constraints.push_back(row({1, 0}, Relation::kLessEqual, 2));
  lp.constraints.push_back(row({0, 1}, Relation::kLessEqual, 2));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-9);
}

TEST(SimplexLp, UnconstrainedProblems) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 2};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kOptimal);
  EXPECT_NEAR(solve_lp(lp).objective, 0.0, 1e-12);

  lp.objective = {-1, 2};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexLp, RespectsIterationLimit) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {-1, -1, -1};
  lp.constraints.push_back(row({1, 1, 1}, Relation::kLessEqual, 10));
  LpOptions options;
  options.max_iterations = 0;
  EXPECT_EQ(solve_lp(lp, options).status, LpStatus::kIterationLimit);
}

TEST(SimplexLp, ValidatesProblemShape) {
  LpProblem lp;
  lp.num_vars = 0;
  EXPECT_THROW((void)solve_lp(lp), InvalidArgumentError);

  lp.num_vars = 2;
  lp.objective = {1};  // wrong size
  EXPECT_THROW((void)solve_lp(lp), InvalidArgumentError);

  lp.objective = {1, 1};
  lp.constraints.push_back(row({1}, Relation::kEqual, 1));  // wrong width
  EXPECT_THROW((void)solve_lp(lp), InvalidArgumentError);
}

TEST(SimplexLp, ZeroRhsEqualityIsFeasibleAtOrigin) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.constraints.push_back(row({1, -1}, Relation::kEqual, 0));
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-9);
}

TEST(RootRelaxation, EqualsPerfectFractionalBalance) {
  // Fractional jobs can be split arbitrarily, so the LP optimum is exactly
  // total/m — the classic weakness of the assignment relaxation.
  const Instance instance(3, {7, 5, 9, 6});  // total 27 -> 9
  const LpProblem lp = build_root_relaxation(instance);
  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 9.0, 1e-6);
}

TEST(RootRelaxation, HasExpectedShape) {
  const Instance instance(2, {3, 4, 5});
  const LpProblem lp = build_root_relaxation(instance);
  EXPECT_EQ(lp.num_vars, 2 * 3 + 1);
  EXPECT_EQ(lp.constraints.size(), 3u + 2u);
  EXPECT_DOUBLE_EQ(lp.objective.back(), 1.0);
}

TEST(LpStatusName, CoversAllStatuses) {
  EXPECT_STREQ(lp_status_name(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(lp_status_name(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(lp_status_name(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(lp_status_name(LpStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace pcmax
