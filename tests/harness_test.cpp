#include <gtest/gtest.h>

#include <sstream>

#include "algo/ptas/ptas.hpp"
#include "harness/experiment.hpp"
#include "harness/paper_instances.hpp"
#include "harness/simmachine.hpp"

namespace pcmax {
namespace {

PtasResult traced_run(const Instance& instance) {
  PtasOptions options;
  options.keep_trace = true;
  return PtasSolver(options).solve_with_trace(instance);
}

TEST(SimMachine, OneCoreRoughlyMatchesTheMeasuredDpTime) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 30, 9, 0);
  const PtasResult run = traced_run(instance);

  SimMachineModel model;
  model.barrier_seconds = 0.0;  // isolate the compute model
  double dp_measured = 0.0;
  double dp_simulated = 0.0;
  for (const BisectionIteration& it : run.bisection.trace) {
    dp_measured += it.dp_seconds;
    dp_simulated += simulate_dp_iteration_seconds(it, 1, model);
  }
  // With P = 1 the replay is sum(q_l) * per-entry = the measured time.
  EXPECT_NEAR(dp_simulated, dp_measured, 1e-9 + dp_measured * 1e-6);
}

TEST(SimMachine, SimulatedTimeIsMonotoneInCores) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 6, 40, 10, 0);
  const PtasResult run = traced_run(instance);
  double previous = 1e100;
  for (unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double simulated = simulate_parallel_ptas_seconds(
        run.bisection, run.seconds, cores, SimMachineModel{});
    EXPECT_LE(simulated, previous + 1e-12) << cores << " cores";
    previous = simulated;
  }
}

TEST(SimMachine, SpeedupIsBoundedByTheLevelStructure) {
  // Even with infinite cores, each anti-diagonal costs one round plus the
  // barrier: the span lower-bounds the simulated time.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 30, 11, 0);
  const PtasResult run = traced_run(instance);
  const SimMachineModel model;
  for (const BisectionIteration& it : run.bisection.trace) {
    const double at_huge_p = simulate_dp_iteration_seconds(it, 1u << 20, model);
    StateSpace space(it.counts, it.table_size > 0 ? it.table_size : 1);
    const double levels = static_cast<double>(space.max_level() + 1);
    const double per_entry =
        it.table_size ? it.dp_seconds / static_cast<double>(it.table_size) : 0.0;
    EXPECT_NEAR(at_huge_p, levels * (per_entry + model.barrier_seconds),
                1e-12 + at_huge_p * 1e-9);
  }
}

TEST(SimMachine, BarrierCostPenalisesManyLevels) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 30, 12, 0);
  const PtasResult run = traced_run(instance);
  SimMachineModel cheap;
  cheap.barrier_seconds = 0.0;
  SimMachineModel costly;
  costly.barrier_seconds = 1e-3;
  const double fast = simulate_parallel_ptas_seconds(run.bisection, run.seconds,
                                                     4, cheap);
  const double slow = simulate_parallel_ptas_seconds(run.bisection, run.seconds,
                                                     4, costly);
  EXPECT_GT(slow, fast);
}

TEST(SimMachine, RequiresAFullTableTrace) {
  BisectionIteration it;
  it.counts = {1};
  it.table_size = 2;
  it.entries_computed = 1;  // not a bottom-up trace
  EXPECT_THROW((void)simulate_dp_iteration_seconds(it, 2, SimMachineModel{}),
               InternalError);
}

TEST(PaperInstances, SpecsCoverTheDescribedCategories) {
  const auto specs = ratio_instance_specs();
  ASSERT_EQ(specs.size(), 8u);
  // The LPT-adversarial specs use n = 2m+1 with U(m, 2m-1).
  EXPECT_EQ(specs[0].family, InstanceFamily::kUniformMTo2M1);
  EXPECT_EQ(specs[0].jobs, 2 * specs[0].machines + 1);
  EXPECT_EQ(specs[1].jobs, 2 * specs[1].machines + 1);
  // The narrow-range specs use U(95,105).
  EXPECT_EQ(specs[2].family, InstanceFamily::kUniform95To105);
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.label.empty());
    EXPECT_GE(spec.machines, 1);
    EXPECT_GE(spec.jobs, 1);
  }
}

TEST(SpeedupExperiment, SmokeRunProducesConsistentCells) {
  SpeedupConfig config;
  config.machines = 4;
  config.jobs = 16;
  config.families = {InstanceFamily::kUniform1To10,
                     InstanceFamily::kUniform1To100};
  config.trials = 2;
  config.core_counts = {1, 4};
  config.verify_parallel_engines = true;
  // Tiny smoke instances take microseconds of DP; disable the simulated
  // barrier cost so the 1-core replay matches the measured run.
  config.model.barrier_seconds = 0.0;
  std::ostringstream log;
  const SpeedupResult result = run_speedup_experiment(config, log);

  ASSERT_EQ(result.cells.size(), 4u);  // 2 families x 2 core counts
  ASSERT_EQ(result.summaries.size(), 2u);
  for (const SpeedupCell& cell : result.cells) {
    EXPECT_GT(cell.parallel_seconds, 0.0);
    EXPECT_GT(cell.speedup_vs_ptas, 0.0);
    EXPECT_GT(cell.speedup_vs_ip, 0.0);
    if (cell.cores == 1) {
      // The simulated 1-core run is the sequential run (modulo barrier).
      EXPECT_NEAR(cell.speedup_vs_ptas, 1.0, 0.2);
    }
  }
  for (const SpeedupFamilySummary& summary : result.summaries) {
    EXPECT_EQ(summary.trials, 2);
    EXPECT_GE(summary.ptas_makespan_ratio, 0.999);
    EXPECT_EQ(summary.ip_optimal_count, 2);
  }
  EXPECT_FALSE(log.str().empty());
}

TEST(RatioExperiment, RatiosAreOrderedAsThePaperReports) {
  RatioConfig config;
  config.specs = {{"adv", InstanceFamily::kUniformMTo2M1, 4, 9},
                  {"narrow", InstanceFamily::kUniform95To105, 3, 8}};
  config.trials = 3;
  std::ostringstream log;
  const auto rows = run_ratio_experiment(config, log);

  ASSERT_EQ(rows.size(), 2u);
  for (const RatioRow& row : rows) {
    EXPECT_EQ(row.optimal_count, row.trials);  // tiny instances: certified
    EXPECT_GE(row.ratio_ptas, 1.0 - 1e-9);
    EXPECT_GE(row.ratio_lpt, 1.0 - 1e-9);
    EXPECT_GE(row.ratio_ls, 1.0 - 1e-9);
    // The PTAS guarantee at eps = 0.3.
    EXPECT_LE(row.ratio_ptas, 1.3 + 1e-9);
    // On the LPT-adversarial family the PTAS must not lose to LPT (on other
    // families the paper's Fig. 5(b) shows LPT can edge it out slightly).
    if (row.spec.family == InstanceFamily::kUniformMTo2M1) {
      EXPECT_LE(row.ratio_ptas, row.ratio_lpt + 1e-9);
    }
  }
}

}  // namespace
}  // namespace pcmax
