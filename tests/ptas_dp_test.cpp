// Equivalence and correctness tests for every DP realisation: bottom-up,
// top-down, and the three parallel variants across thread counts and loop
// schedules. These pin the paper's central claim — Algorithm 3 computes
// exactly the table of Algorithm 2.
#include <gtest/gtest.h>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/dp_sequential.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

struct DpFixture {
  RoundedInstance rounded;
  StateSpace space;
  ConfigSet configs;

  DpFixture(std::vector<Time> sizes, std::vector<int> counts, Time target)
      : rounded(make(sizes, counts, target)),
        space(counts, kBig),
        configs(enumerate_configs(rounded, space, kBig)) {}

  static RoundedInstance make(const std::vector<Time>& sizes,
                              const std::vector<int>& counts, Time target) {
    RoundedInstance rounded;
    rounded.params = RoundingParams::make(target, 4);
    for (std::size_t d = 0; d < sizes.size(); ++d) {
      rounded.class_index.push_back(static_cast<int>(d) + 1);
      rounded.class_size.push_back(sizes[d]);
      rounded.class_count.push_back(counts[d]);
      rounded.class_jobs.emplace_back();
      rounded.total_long_jobs += counts[d];
    }
    return rounded;
  }
};

TEST(DpBottomUp, SolvesThePaperExample) {
  // Two jobs of rounded size 6 and three of size 11, T = 30.
  // Two machines suffice: {6,11,11} = 28 and {6,11} = 17.
  DpFixture f({6, 11}, {2, 3}, 30);
  const DpRun run = dp_bottom_up(f.rounded, f.space, f.configs);
  EXPECT_EQ(run.machines_needed, 2);
  EXPECT_EQ(run.table.value(0), 0);  // OPT(0,0) = 0
  EXPECT_EQ(run.stats.entries_computed, 12u);
  EXPECT_EQ(run.stats.table_size, 12u);
  EXPECT_EQ(run.stats.levels, 6);
}

TEST(DpBottomUp, SingleJobNeedsOneMachine) {
  DpFixture f({10}, {1}, 30);
  EXPECT_EQ(dp_bottom_up(f.rounded, f.space, f.configs).machines_needed, 1);
}

TEST(DpBottomUp, TightCapacityForcesOneMachinePerJob) {
  // Each job has rounded size 20 and T = 30: no two jobs share a machine.
  DpFixture f({20}, {5}, 30);
  EXPECT_EQ(dp_bottom_up(f.rounded, f.space, f.configs).machines_needed, 5);
}

TEST(DpBottomUp, PerfectPackingIsFound) {
  // Sizes 10 and 15; T = 30: machines (3,0) and (0,2) pack 6 jobs of size
  // 10 into 2 machines and 4 jobs of 15 into 2 machines.
  DpFixture f({10, 15}, {6, 4}, 30);
  EXPECT_EQ(dp_bottom_up(f.rounded, f.space, f.configs).machines_needed, 4);
}

TEST(DpBottomUp, EmptyInstanceNeedsZeroMachines) {
  DpFixture f({}, {}, 30);
  const DpRun run = dp_bottom_up(f.rounded, f.space, f.configs);
  EXPECT_EQ(run.machines_needed, 0);
  EXPECT_EQ(run.stats.table_size, 1u);
}

TEST(DpBottomUp, MatchesFirstFitReasoningOnMixedSizes) {
  // Sizes 9, 13, 17 with counts 2, 2, 1 and T = 30.
  // Total = 61 -> at least 3 machines; {17,13},{13,9},{9} wait that's 3:
  // 17+13=30 <= 30, 13+9=22, 9 alone -> 3 machines.
  DpFixture f({9, 13, 17}, {2, 2, 1}, 30);
  EXPECT_EQ(dp_bottom_up(f.rounded, f.space, f.configs).machines_needed, 3);
}

TEST(DpTopDown, MatchesBottomUpValuesOnReachableStates) {
  DpFixture f({6, 11}, {2, 3}, 30);
  const DpRun bottom = dp_bottom_up(f.rounded, f.space, f.configs);
  const DpRun top = dp_top_down(f.rounded, f.space, f.configs);
  EXPECT_EQ(top.machines_needed, bottom.machines_needed);
  for (std::size_t i = 0; i < f.space.size(); ++i) {
    if (top.table.value(i) == DpTable::kUnset) continue;  // unreachable
    EXPECT_EQ(top.table.value(i), bottom.table.value(i)) << "entry " << i;
  }
}

TEST(DpTopDown, ComputesNoMoreEntriesThanBottomUp) {
  DpFixture f({9, 13, 17}, {3, 2, 2}, 40);
  const DpRun bottom = dp_bottom_up(f.rounded, f.space, f.configs);
  const DpRun top = dp_top_down(f.rounded, f.space, f.configs);
  EXPECT_EQ(top.machines_needed, bottom.machines_needed);
  EXPECT_LE(top.stats.entries_computed, bottom.stats.entries_computed);
  EXPECT_GE(top.stats.entries_computed, 1u);
}

class ParallelDpEquivalence
    : public ::testing::TestWithParam<std::tuple<ParallelDpVariant, unsigned,
                                                 LoopSchedule>> {};

TEST_P(ParallelDpEquivalence, ProducesTheExactBottomUpTable) {
  const auto [variant, threads, schedule] = GetParam();

  const DpFixture fixtures[] = {
      DpFixture({6, 11}, {2, 3}, 30),
      DpFixture({9, 13, 17}, {3, 2, 2}, 40),
      DpFixture({20}, {5}, 30),
      DpFixture({}, {}, 30),
      DpFixture({7, 8, 9, 10}, {2, 1, 2, 1}, 31),
  };
  for (const DpFixture& f : fixtures) {
    const DpRun expected = dp_bottom_up(f.rounded, f.space, f.configs);

    ParallelDpOptions options;
    options.variant = variant;
    options.schedule = schedule;
    options.spmd_threads = threads;
    ThreadPoolExecutor executor(threads);
    options.executor = &executor;

    const DpRun run = dp_parallel(f.rounded, f.space, f.configs, options);
    EXPECT_EQ(run.machines_needed, expected.machines_needed);
    EXPECT_EQ(run.stats.entries_computed, expected.stats.entries_computed);
    for (std::size_t i = 0; i < f.space.size(); ++i) {
      ASSERT_EQ(run.table.value(i), expected.table.value(i))
          << parallel_dp_variant_name(variant) << " threads=" << threads
          << " entry " << i;
      // The argmin tie-break (lowest config id) makes choices deterministic
      // and identical across all realisations.
      ASSERT_EQ(run.table.choice(i), expected.table.choice(i));
    }
  }
}

std::string equivalence_name(
    const ::testing::TestParamInfo<
        std::tuple<ParallelDpVariant, unsigned, LoopSchedule>>& info) {
  const auto [variant, threads, schedule] = info.param;
  std::string name = parallel_dp_variant_name(variant);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_t" + std::to_string(threads);
  name += schedule == LoopSchedule::kStatic       ? "_static"
          : schedule == LoopSchedule::kRoundRobin ? "_rr"
                                                  : "_dyn";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelDpEquivalence,
    ::testing::Combine(::testing::Values(ParallelDpVariant::kScanPerLevel,
                                         ParallelDpVariant::kBucketed,
                                         ParallelDpVariant::kSpmd),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(LoopSchedule::kStatic,
                                         LoopSchedule::kRoundRobin,
                                         LoopSchedule::kDynamic)),
    equivalence_name);

#if defined(PCMAX_HAVE_OPENMP)
TEST(DpParallelOpenMP, MatchesBottomUpThroughTheOpenMPBackend) {
  // The paper's implementation substrate: OpenMP worksharing must produce
  // the same tables as our own pool (and as the sequential fill).
  DpFixture f({9, 13, 17}, {3, 2, 2}, 40);
  const DpRun expected = dp_bottom_up(f.rounded, f.space, f.configs);
  OpenMPExecutor executor(3);
  for (const auto variant :
       {ParallelDpVariant::kScanPerLevel, ParallelDpVariant::kBucketed}) {
    ParallelDpOptions options;
    options.variant = variant;
    options.executor = &executor;
    options.schedule = LoopSchedule::kRoundRobin;
    const DpRun run = dp_parallel(f.rounded, f.space, f.configs, options);
    EXPECT_EQ(run.machines_needed, expected.machines_needed);
    for (std::size_t i = 0; i < f.space.size(); ++i) {
      ASSERT_EQ(run.table.value(i), expected.table.value(i))
          << parallel_dp_variant_name(variant) << " " << i;
    }
  }
}
#endif  // PCMAX_HAVE_OPENMP

TEST(ComputeLevels, MatchesLevelOf) {
  const StateSpace space({3, 2, 2}, kBig);
  for (unsigned threads : {1u, 3u}) {
    ThreadPoolExecutor executor(threads);
    const std::vector<std::int32_t> levels = compute_levels(space, executor);
    ASSERT_EQ(levels.size(), space.size());
    for (std::size_t i = 0; i < space.size(); ++i) {
      EXPECT_EQ(levels[i], space.level_of(i));
    }
  }
}

TEST(BuildLevelIndex, GroupsEntriesByLevel) {
  const StateSpace space({2, 3}, kBig);
  SequentialExecutor executor;
  const auto levels = compute_levels(space, executor);
  const LevelIndex index = build_level_index(space, levels);

  ASSERT_EQ(index.level_begin.size(),
            static_cast<std::size_t>(space.max_level()) + 2);
  EXPECT_EQ(index.level_begin.front(), 0u);
  EXPECT_EQ(index.level_begin.back(), space.size());

  std::vector<bool> seen(space.size(), false);
  for (int level = 0; level <= space.max_level(); ++level) {
    for (std::size_t slot = index.level_begin[static_cast<std::size_t>(level)];
         slot < index.level_begin[static_cast<std::size_t>(level) + 1]; ++slot) {
      const std::size_t entry = index.order[slot];
      EXPECT_EQ(space.level_of(entry), level);
      EXPECT_FALSE(seen[entry]);
      seen[entry] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DpParallel, ScanAndBucketedRequireAnExecutor) {
  DpFixture f({6}, {1}, 30);
  ParallelDpOptions options;
  options.variant = ParallelDpVariant::kBucketed;
  options.executor = nullptr;
  EXPECT_THROW((void)dp_parallel(f.rounded, f.space, f.configs, options),
               InvalidArgumentError);
}

TEST(DpKernels, PerEntryEnumerationMatchesGlobalConfigsExactly) {
  // The paper-faithful kernel (re-enumerating C_v per entry, Alg. 3 Line 17)
  // must reproduce the optimised kernel's values AND argmin choices.
  const DpFixture fixtures[] = {
      DpFixture({6, 11}, {2, 3}, 30),
      DpFixture({9, 13, 17}, {3, 2, 2}, 40),
      DpFixture({20}, {5}, 30),
      DpFixture({7, 8, 9, 10}, {2, 1, 2, 1}, 31),
  };
  for (const DpFixture& f : fixtures) {
    const DpRun global = dp_bottom_up(f.rounded, f.space, f.configs,
                                      DpKernel::kGlobalConfigs);
    const DpRun enumerated = dp_bottom_up(f.rounded, f.space, f.configs,
                                          DpKernel::kPerEntryEnum);
    EXPECT_EQ(enumerated.machines_needed, global.machines_needed);
    for (std::size_t i = 0; i < f.space.size(); ++i) {
      ASSERT_EQ(enumerated.table.value(i), global.table.value(i)) << i;
      ASSERT_EQ(enumerated.table.choice(i), global.table.choice(i)) << i;
    }
    // Per-entry enumeration only ever touches fitting configs, so it scans
    // no more candidates than the global scan does.
    EXPECT_LE(enumerated.stats.config_scans, global.stats.config_scans);
  }
}

TEST(DpKernels, ParallelVariantsSupportPerEntryEnumeration) {
  DpFixture f({9, 13, 17}, {3, 2, 2}, 40);
  const DpRun expected =
      dp_bottom_up(f.rounded, f.space, f.configs, DpKernel::kPerEntryEnum);
  for (const ParallelDpVariant variant :
       {ParallelDpVariant::kScanPerLevel, ParallelDpVariant::kBucketed,
        ParallelDpVariant::kSpmd}) {
    ThreadPoolExecutor executor(2);
    ParallelDpOptions options;
    options.variant = variant;
    options.executor = &executor;
    options.spmd_threads = 2;
    options.kernel = DpKernel::kPerEntryEnum;
    const DpRun run = dp_parallel(f.rounded, f.space, f.configs, options);
    EXPECT_EQ(run.machines_needed, expected.machines_needed);
    for (std::size_t i = 0; i < f.space.size(); ++i) {
      ASSERT_EQ(run.table.value(i), expected.table.value(i))
          << parallel_dp_variant_name(variant) << " " << i;
      ASSERT_EQ(run.table.choice(i), expected.table.choice(i));
    }
  }
}

TEST(DpStats, ConfigScansAreConsistentAcrossVariants) {
  DpFixture f({9, 13, 17}, {3, 2, 2}, 40);
  const DpRun bottom = dp_bottom_up(f.rounded, f.space, f.configs);
  ThreadPoolExecutor executor(2);
  ParallelDpOptions options;
  options.variant = ParallelDpVariant::kBucketed;
  options.executor = &executor;
  const DpRun par = dp_parallel(f.rounded, f.space, f.configs, options);
  // Conservation: for every non-origin entry each of the |C| configs is
  // either scanned or pruned by the level bound, identically across
  // variants (the pruning decision depends only on the entry's level).
  EXPECT_EQ(par.stats.config_scans, bottom.stats.config_scans);
  EXPECT_EQ(par.stats.configs_pruned, bottom.stats.configs_pruned);
  EXPECT_EQ(bottom.stats.config_scans + bottom.stats.configs_pruned,
            (f.space.size() - 1) * f.configs.count());
  // The level bound actually bites on this instance.
  EXPECT_GT(bottom.stats.configs_pruned, 0u);
  EXPECT_LE(bottom.stats.config_scans,
            (f.space.size() - 1) * f.configs.count());

  // With pruning disabled the pre-PR accounting holds exactly.
  const DpRun unpruned =
      dp_bottom_up(f.rounded, f.space, f.configs, DpKernel::kGlobalConfigs, {},
                   DpTableMode::kValuesAndChoices, LevelPruning::kOff);
  EXPECT_EQ(unpruned.stats.configs_pruned, 0u);
  EXPECT_EQ(unpruned.stats.config_scans,
            (f.space.size() - 1) * f.configs.count());
}

}  // namespace
}  // namespace pcmax
