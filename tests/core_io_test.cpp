#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "algo/lpt.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(InstanceIo, ReadsInstancesSkippingCommentsAndBlanks) {
  std::istringstream is(
      "# a comment\n"
      "\n"
      "2 3 5 6 7\n"
      "   # indented comment\n"
      "3 2 10 20\n");
  const auto instances = read_instances(is);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0], Instance(2, {5, 6, 7}));
  EXPECT_EQ(instances[1], Instance(3, {10, 20}));
}

TEST(InstanceIo, ReportsTheOffendingLineNumber) {
  std::istringstream is("2 2 1 2\nbogus line\n");
  try {
    (void)read_instances(is);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(InstanceIo, WriteThenReadRoundTrips) {
  const std::vector<Instance> original{Instance(2, {1, 2, 3}),
                                       Instance(5, {9, 9, 9, 9})};
  std::stringstream buffer;
  write_instances(buffer, original);
  EXPECT_EQ(read_instances(buffer), original);
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pcmax_io_test.txt";
  const std::vector<Instance> original{Instance(4, {8, 1, 6})};
  write_instances_file(path, original);
  EXPECT_EQ(read_instances_file(path), original);
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_instances_file("/nonexistent/dir/x.txt"),
               InvalidArgumentError);
}

TEST(ScheduleIo, TextRoundTripPreservesTheAssignment) {
  const Instance instance(3, {4, 7, 2, 5, 6});
  const SolverResult lpt = LptSolver().solve(instance);
  const std::string text = schedule_to_text(instance, lpt.schedule);
  const Schedule parsed = schedule_from_text(instance, text);
  EXPECT_EQ(parsed.assignment(instance), lpt.schedule.assignment(instance));
  EXPECT_EQ(parsed.makespan(instance), lpt.makespan);
}

TEST(ScheduleIo, TextIncludesHeaderAndMachines) {
  const Instance instance(2, {3, 4});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  const std::string text = schedule_to_text(instance, schedule);
  EXPECT_NE(text.find("makespan 4 machines 2"), std::string::npos);
  EXPECT_NE(text.find("machine 0: 0"), std::string::npos);
  EXPECT_NE(text.find("machine 1: 1"), std::string::npos);
}

TEST(ScheduleIo, RejectsIncompleteOrCorruptText) {
  const Instance instance(2, {3, 4});
  EXPECT_THROW((void)schedule_from_text(instance, "garbage"),
               InvalidArgumentError);
  EXPECT_THROW((void)schedule_from_text(instance, "makespan 4 machines 3\n"),
               InvalidArgumentError);
  // Declared makespan must match the actual assignment.
  EXPECT_THROW((void)schedule_from_text(
                   instance, "makespan 99 machines 2\nmachine 0: 0\nmachine 1: 1\n"),
               InvalidArgumentError);
  // A job assigned twice fails schedule validation.
  EXPECT_THROW((void)schedule_from_text(
                   instance, "makespan 7 machines 2\nmachine 0: 0 1\nmachine 1: 1\n"),
               InvalidArgumentError);
}

TEST(ScheduleIo, RefusesToSerialiseInvalidSchedules) {
  const Instance instance(2, {3, 4});
  Schedule incomplete(2);
  incomplete.assign(0, 0);  // job 1 missing
  EXPECT_THROW((void)schedule_to_text(instance, incomplete), InvalidArgumentError);
}

TEST(ScheduleIo, EmptyMachinesAreRepresentable) {
  const Instance instance(3, {5});
  Schedule schedule(3);
  schedule.assign(1, 0);
  const std::string text = schedule_to_text(instance, schedule);
  const Schedule parsed = schedule_from_text(instance, text);
  EXPECT_TRUE(parsed.jobs_on(0).empty());
  EXPECT_EQ(parsed.jobs_on(1), (std::vector<int>{0}));
  EXPECT_TRUE(parsed.jobs_on(2).empty());
}

}  // namespace
}  // namespace pcmax
