#include "algo/ptas/config_enum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

/// Builds a RoundedInstance directly from (sizes, counts, T) without going
/// through job rounding — the DP layer only consumes these fields.
RoundedInstance make_rounded(std::vector<Time> sizes, std::vector<int> counts,
                             Time target, int k = 4) {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(target, k);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    rounded.class_index.push_back(static_cast<int>(d) + 1);
    rounded.class_size.push_back(sizes[d]);
    rounded.class_count.push_back(counts[d]);
    rounded.class_jobs.emplace_back();
    rounded.total_long_jobs += counts[d];
  }
  return rounded;
}

/// Brute-force reference enumeration.
std::set<std::vector<int>> brute_force_configs(const RoundedInstance& rounded) {
  std::set<std::vector<int>> result;
  std::vector<int> current(static_cast<std::size_t>(rounded.dims()), 0);
  auto weight = [&] {
    Time w = 0;
    for (int d = 0; d < rounded.dims(); ++d) {
      w += rounded.class_size[static_cast<std::size_t>(d)] *
           current[static_cast<std::size_t>(d)];
    }
    return w;
  };
  // Odometer over all s <= counts.
  for (;;) {
    if (weight() <= rounded.params.target &&
        std::any_of(current.begin(), current.end(), [](int s) { return s > 0; })) {
      result.insert(current);
    }
    int d = rounded.dims() - 1;
    while (d >= 0 &&
           current[static_cast<std::size_t>(d)] ==
               rounded.class_count[static_cast<std::size_t>(d)]) {
      current[static_cast<std::size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
    ++current[static_cast<std::size_t>(d)];
  }
  return result;
}

TEST(ConfigEnum, MatchesThePaperExampleSetC) {
  // Paper Eq. (7): N = (2,3), sizes 6 and 11, T = 30. Excluding the zero
  // config, C = {(0,1),(0,2),(1,0),(1,1),(1,2),(2,0),(2,1)}.
  const RoundedInstance rounded = make_rounded({6, 11}, {2, 3}, 30);
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);

  std::set<std::vector<int>> got;
  for (std::size_t c = 0; c < configs.count(); ++c) {
    const auto s = configs.config(c);
    got.insert(std::vector<int>(s.begin(), s.end()));
  }
  const std::set<std::vector<int>> expected{{0, 1}, {0, 2}, {1, 0}, {1, 1},
                                            {1, 2}, {2, 0}, {2, 1}};
  EXPECT_EQ(got, expected);
}

TEST(ConfigEnum, ExcludesTheZeroConfiguration) {
  const RoundedInstance rounded = make_rounded({5}, {4}, 20);
  const StateSpace space({4}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  for (std::size_t c = 0; c < configs.count(); ++c) {
    const auto s = configs.config(c);
    EXPECT_TRUE(std::any_of(s.begin(), s.end(), [](int v) { return v > 0; }));
  }
  EXPECT_EQ(configs.count(), 4u);  // s1 in {1,2,3,4}: 4*5=20 <= 20
}

TEST(ConfigEnum, MatchesBruteForceOnRandomShapes) {
  const struct {
    std::vector<Time> sizes;
    std::vector<int> counts;
    Time target;
  } cases[] = {
      {{7, 9, 13}, {2, 2, 1}, 26},
      {{3}, {10}, 9},
      {{10, 11, 12, 13}, {1, 1, 1, 1}, 24},
      {{6, 11}, {2, 3}, 30},
      {{5, 8}, {0, 2}, 16},  // a dimension with zero count
  };
  for (const auto& test_case : cases) {
    const RoundedInstance rounded =
        make_rounded(test_case.sizes, test_case.counts, test_case.target);
    const StateSpace space(test_case.counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);

    std::set<std::vector<int>> got;
    for (std::size_t c = 0; c < configs.count(); ++c) {
      const auto s = configs.config(c);
      got.insert(std::vector<int>(s.begin(), s.end()));
    }
    EXPECT_EQ(got, brute_force_configs(rounded)) << "T=" << test_case.target;
  }
}

TEST(ConfigEnum, OffsetsAreLinearInTheDigits) {
  const RoundedInstance rounded = make_rounded({6, 11}, {2, 3}, 30);
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  for (std::size_t c = 0; c < configs.count(); ++c) {
    EXPECT_EQ(configs.offsets[c], space.encode(configs.config(c)));
  }
}

TEST(ConfigEnum, WeightsAreTotalRoundedTimes) {
  const RoundedInstance rounded = make_rounded({6, 11}, {2, 3}, 30);
  const StateSpace space({2, 3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  for (std::size_t c = 0; c < configs.count(); ++c) {
    const auto s = configs.config(c);
    const Time expected = 6 * s[0] + 11 * s[1];
    EXPECT_EQ(configs.weights[c], expected);
    EXPECT_LE(configs.weights[c], 30);
  }
}

TEST(ConfigEnum, EmptyDimsYieldNoConfigs) {
  const RoundedInstance rounded = make_rounded({}, {}, 30);
  const StateSpace space({}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  EXPECT_EQ(configs.count(), 0u);
}

TEST(ConfigEnum, EnforcesTheConfigBudget) {
  const RoundedInstance rounded = make_rounded({1, 1, 1}, {9, 9, 9}, 1000);
  const StateSpace space({9, 9, 9}, kBig);
  EXPECT_THROW((void)enumerate_configs(rounded, space, 10), ResourceLimitError);
}

TEST(ConfigEnum, ConfigsAreLevelSortedWithCorrectPrefix) {
  const RoundedInstance rounded = make_rounded({9, 13, 17}, {3, 2, 2}, 40);
  const StateSpace space({3, 2, 2}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  const auto dims = static_cast<std::size_t>(configs.dims);
  ASSERT_EQ(configs.levels.size(), configs.count());

  // Levels are the digit sums, non-decreasing across the sorted set, and
  // within a level the encoded offsets keep the lexicographic enumeration
  // order (the counting sort is stable), i.e. strictly increase.
  for (std::size_t c = 0; c < configs.count(); ++c) {
    std::int32_t level = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      level += configs.digits[c * dims + d];
    }
    EXPECT_EQ(configs.levels[c], level) << "config " << c;
    if (c > 0) {
      EXPECT_GE(configs.levels[c], configs.levels[c - 1]);
      if (configs.levels[c] == configs.levels[c - 1]) {
        EXPECT_GT(configs.offsets[c], configs.offsets[c - 1]);
      }
    }
  }

  // level_prefix[l] counts configs of level <= l; prefix_count clamps.
  const std::int32_t max_level = configs.levels.back();
  for (std::int32_t l = 0; l <= max_level; ++l) {
    std::size_t expected = 0;
    for (const std::int32_t level : configs.levels) {
      if (level <= l) ++expected;
    }
    EXPECT_EQ(configs.prefix_count(l), expected) << "level " << l;
  }
  EXPECT_EQ(configs.prefix_count(0), 0u);  // configs are non-zero vectors
  EXPECT_EQ(configs.prefix_count(-1), 0u);
  EXPECT_EQ(configs.prefix_count(max_level + 10), configs.count());
}

TEST(ConfigEnum, PackedDigitsMirrorTheDigitArray) {
  const RoundedInstance rounded = make_rounded({9, 13, 17}, {3, 2, 2}, 40);
  const StateSpace space({3, 2, 2}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ASSERT_TRUE(configs.packable);
  ASSERT_EQ(configs.packed.size(), configs.count());
  const auto dims = static_cast<std::size_t>(configs.dims);
  for (std::size_t c = 0; c < configs.count(); ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      EXPECT_EQ(static_cast<int>((configs.packed[c] >> (8 * d)) & 0xff),
                configs.digits[c * dims + d])
          << "config " << c << " dim " << d;
    }
    EXPECT_EQ(configs.packed[c] >> (8 * dims), 0u) << "config " << c;
  }
}

TEST(ConfigEnum, WideDigitsAreNotPackable) {
  // A class count above 127 cannot be packed into a byte with a spare high
  // bit; the kernel must fall back to the scalar fits loop.
  const RoundedInstance rounded = make_rounded({1}, {200}, 300);
  const StateSpace space({200}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  EXPECT_FALSE(configs.packable);
  EXPECT_TRUE(configs.packed.empty());
  EXPECT_GT(configs.count(), 0u);
}

TEST(ConfigEnum, PackableExactlyUpToTheByteBoundary) {
  // 127 is the widest packable digit (the SWAR test needs the high bit
  // spare); 128 is one too many. The packed mirror must stay faithful right
  // at the boundary.
  const RoundedInstance at = make_rounded({2}, {127}, 254);
  const StateSpace at_space({127}, kBig);
  const ConfigSet at_configs = enumerate_configs(at, at_space, kBig);
  EXPECT_TRUE(at_configs.packable);
  ASSERT_EQ(at_configs.packed.size(), at_configs.count());
  EXPECT_EQ(at_configs.packed.back(), 127u);  // largest config, one dim

  const RoundedInstance over = make_rounded({2}, {128}, 256);
  const StateSpace over_space({128}, kBig);
  const ConfigSet over_configs = enumerate_configs(over, over_space, kBig);
  EXPECT_FALSE(over_configs.packable);
  EXPECT_TRUE(over_configs.packed.empty());
}

TEST(ConfigEnum, MoreThanEightDimsAreNotPackable) {
  // Nine classes cannot share one 64-bit word at a byte per digit.
  const std::vector<Time> sizes(9, 5);
  const std::vector<int> counts(9, 1);
  const RoundedInstance rounded = make_rounded(sizes, counts, 45);
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  EXPECT_FALSE(configs.packable);
  EXPECT_TRUE(configs.packed.empty());
  EXPECT_GT(configs.count(), 0u);

  // Eight dims still pack (one byte each, no spare room needed beyond the
  // top byte of the last dimension).
  const std::vector<Time> sizes8(8, 5);
  const std::vector<int> counts8(8, 1);
  const RoundedInstance rounded8 = make_rounded(sizes8, counts8, 40);
  const StateSpace space8(counts8, kBig);
  const ConfigSet configs8 = enumerate_configs(rounded8, space8, kBig);
  EXPECT_TRUE(configs8.packable);
}

TEST(ConfigEnum, PrefixClampsAcrossMissingTopLevels) {
  // With size 7 and T = 15 only 1- and 2-job configs exist; prefix queries
  // above the top populated level must clamp to the full count instead of
  // walking an empty level.
  const RoundedInstance rounded = make_rounded({7}, {3}, 15);
  const StateSpace space({3}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ASSERT_EQ(configs.count(), 2u);  // (1) and (2); (3) weighs 21 > 15
  EXPECT_EQ(configs.prefix_count(0), 0u);
  EXPECT_EQ(configs.prefix_count(1), 1u);
  EXPECT_EQ(configs.prefix_count(2), 2u);
  EXPECT_EQ(configs.prefix_count(3), 2u);  // the missing level clamps
  EXPECT_EQ(configs.prefix_count(100), 2u);
}

TEST(ConfigEnum, EmptySetHasEmptyPrefix) {
  const RoundedInstance rounded = make_rounded({}, {}, 30);
  const StateSpace space({}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  EXPECT_EQ(configs.prefix_count(0), 0u);
  EXPECT_EQ(configs.prefix_count(5), 0u);
}

TEST(ConfigFits, ComparesComponentwise) {
  const std::vector<int> v{2, 3, 1};
  EXPECT_TRUE(config_fits(std::vector<int>{2, 3, 1}, v));
  EXPECT_TRUE(config_fits(std::vector<int>{0, 0, 0}, v));
  EXPECT_TRUE(config_fits(std::vector<int>{1, 2, 0}, v));
  EXPECT_FALSE(config_fits(std::vector<int>{3, 0, 0}, v));
  EXPECT_FALSE(config_fits(std::vector<int>{0, 4, 0}, v));
  EXPECT_FALSE(config_fits(std::vector<int>{0, 0, 2}, v));
}

}  // namespace
}  // namespace pcmax
