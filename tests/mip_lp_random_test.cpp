// Randomised cross-check of the simplex solver: for 2-variable LPs the
// optimum (when bounded and feasible) lies on a vertex — an intersection of
// two active constraints (including the axes x=0, y=0). Enumerating all
// candidate vertices geometrically gives an independent reference the
// tableau implementation must match across hundreds of random programs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "mip/lp.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

constexpr double kEps = 1e-7;

struct Line {
  // a*x + b*y = c
  double a, b, c;
};

std::optional<std::pair<double, double>> intersect(const Line& p, const Line& q) {
  const double det = p.a * q.b - p.b * q.a;
  if (std::abs(det) < 1e-12) return std::nullopt;
  return std::make_pair((p.c * q.b - p.b * q.c) / det,
                        (p.a * q.c - p.c * q.a) / det);
}

/// Reference solve by vertex enumeration. Returns nullopt when infeasible;
/// +-infinity handling is avoided by only generating bounded-or-infeasible
/// programs in the test below.
std::optional<double> vertex_enumeration_optimum(const LpProblem& lp) {
  std::vector<Line> lines{{1, 0, 0}, {0, 1, 0}};  // the axes x = 0, y = 0
  for (const LpConstraint& con : lp.constraints) {
    lines.push_back({con.coeffs[0], con.coeffs[1], con.rhs});
  }

  auto feasible = [&](double x, double y) {
    if (x < -kEps || y < -kEps) return false;
    for (const LpConstraint& con : lp.constraints) {
      const double lhs = con.coeffs[0] * x + con.coeffs[1] * y;
      switch (con.relation) {
        case Relation::kLessEqual:
          if (lhs > con.rhs + kEps) return false;
          break;
        case Relation::kGreaterEqual:
          if (lhs < con.rhs - kEps) return false;
          break;
        case Relation::kEqual:
          if (std::abs(lhs - con.rhs) > kEps) return false;
          break;
      }
    }
    return true;
  };

  std::optional<double> best;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const auto vertex = intersect(lines[i], lines[j]);
      if (!vertex || !feasible(vertex->first, vertex->second)) continue;
      const double value =
          lp.objective[0] * vertex->first + lp.objective[1] * vertex->second;
      if (!best || value < *best) best = value;
    }
  }
  return best;
}

TEST(SimplexRandomised, MatchesVertexEnumerationOnTwoVariablePrograms) {
  Xoshiro256StarStar rng(0x51312);
  int solved = 0;
  int infeasible = 0;
  for (int round = 0; round < 400; ++round) {
    LpProblem lp;
    lp.num_vars = 2;
    // Non-negative objective keeps programs bounded below over x,y >= 0.
    lp.objective = {static_cast<double>(uniform_int(rng, 0, 9)),
                    static_cast<double>(uniform_int(rng, 0, 9))};
    const int rows = static_cast<int>(uniform_int(rng, 1, 4));
    for (int r = 0; r < rows; ++r) {
      LpConstraint con;
      con.coeffs = {static_cast<double>(uniform_int(rng, -5, 9)),
                    static_cast<double>(uniform_int(rng, -5, 9))};
      const std::int64_t kind = uniform_int(rng, 0, 2);
      con.relation = kind == 0   ? Relation::kLessEqual
                     : kind == 1 ? Relation::kGreaterEqual
                                 : Relation::kEqual;
      con.rhs = static_cast<double>(uniform_int(rng, -10, 30));
      lp.constraints.push_back(std::move(con));
    }

    const std::optional<double> reference = vertex_enumeration_optimum(lp);
    const LpSolution solution = solve_lp(lp);

    if (!reference) {
      EXPECT_EQ(solution.status, LpStatus::kInfeasible) << "round " << round;
      ++infeasible;
      continue;
    }
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "round " << round;
    EXPECT_NEAR(solution.objective, *reference, 1e-6) << "round " << round;
    // The returned point is primal feasible and achieves the objective.
    ASSERT_EQ(solution.x.size(), 2u);
    EXPECT_NEAR(lp.objective[0] * solution.x[0] + lp.objective[1] * solution.x[1],
                solution.objective, 1e-6);
    ++solved;
  }
  // The generator must exercise both outcomes substantially.
  EXPECT_GT(solved, 150);
  EXPECT_GT(infeasible, 20);
}

}  // namespace
}  // namespace pcmax
