// Golden-file test of the pcmax.batch.v1 report schema.
//
// The report is built from a fixed single-worker batch (two unique problems
// plus one permuted duplicate), with every wall-clock field scrubbed to
// zero, so the dump is bit-stable: key order is pinned by util/json's
// insertion-ordered objects, fingerprints are platform-stable by
// construction, and the solver is deterministic in canonical space.
//
// Regenerate after an INTENTIONAL schema change with:
//   PCMAX_UPDATE_GOLDEN=1 ./service_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/batch_report.hpp"
#include "service/solve_service.hpp"

namespace pcmax {
namespace {

const char* kGoldenPath = PCMAX_SOURCE_DIR "/tests/golden/pcmax_batch_v1.json";

TEST(ServiceGolden, BatchReportMatchesGoldenFile) {
  ServiceOptions options;
  options.workers = 1;  // deterministic hit/miss sequence
  options.cache_capacity = 8;
  options.epsilon = 0.3;
  std::vector<SolveRequest> batch;
  batch.push_back(SolveRequest{Instance(3, {4, 8, 15, 16, 23, 42})});
  batch.push_back(SolveRequest{Instance(2, {5, 5, 5, 7, 9, 9})});
  // Permuted duplicate of the first request: must be the one cache hit.
  batch.push_back(SolveRequest{Instance(3, {42, 23, 16, 15, 8, 4})});

  std::vector<SolveResponse> responses;
  ServiceStats stats;
  {
    SolveService service(options);
    responses = service.solve_batch(std::move(batch));
    stats = service.stats();
  }
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  EXPECT_TRUE(responses[2].cache_hit);

  // Scrub everything wall-clock-dependent; all remaining fields are pure
  // functions of the problems.
  for (SolveResponse& response : responses) {
    response.queue_seconds = 0.0;
    response.solve_seconds = 0.0;
    response.seconds = 0.0;
  }
  stats.queue_high_watermark = 0;
  const JsonValue report = batch_report(options, responses, stats,
                                        /*total_seconds=*/0.0);
  const std::string actual = report.dump(/*pretty=*/true) + "\n";

  if (std::getenv("PCMAX_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath
                         << " — regenerate with PCMAX_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "pcmax.batch.v1 drifted from the golden file. If the schema change "
         "is intentional, regenerate with PCMAX_UPDATE_GOLDEN=1 and update "
         "docs/service.md.";

  // Belt and braces: the golden file itself must stay well-formed JSON with
  // the pinned schema tag.
  const JsonValue parsed = JsonValue::parse(expected.str());
  EXPECT_EQ(parsed.at("schema").as_string(), "pcmax.batch.v1");
  EXPECT_EQ(parsed.at("summary").at("cache_hits").as_int(), 1);
  EXPECT_EQ(parsed.at("requests").size(), 3u);
}

}  // namespace
}  // namespace pcmax
