#include "algo/ptas/rounding.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(RoundingParams, UnitIsCeilOfTargetOverKSquared) {
  // T = 30, k = 4 -> k^2 = 16 -> unit = ceil(30/16) = 2.
  const RoundingParams p = RoundingParams::make(30, 4);
  EXPECT_EQ(p.unit, 2);
  // Exact division: T = 32 -> unit = 2.
  EXPECT_EQ(RoundingParams::make(32, 4).unit, 2);
  // T smaller than k^2 -> unit = 1.
  EXPECT_EQ(RoundingParams::make(10, 4).unit, 1);
}

TEST(RoundingParams, IsLongUsesStrictThreshold) {
  const RoundingParams p = RoundingParams::make(30, 4);  // T/k = 7.5
  EXPECT_FALSE(p.is_long(7));   // 7*4 = 28 <= 30
  EXPECT_TRUE(p.is_long(8));    // 8*4 = 32 > 30
  // Exact boundary: T = 28, k = 4 -> T/k = 7; t = 7 is short (t <= T/k).
  const RoundingParams q = RoundingParams::make(28, 4);
  EXPECT_FALSE(q.is_long(7));
  EXPECT_TRUE(q.is_long(8));
}

TEST(RoundingParams, ClassOfIsFloorOverUnit) {
  const RoundingParams p = RoundingParams::make(30, 4);  // unit 2
  EXPECT_EQ(p.class_of(8), 4);
  EXPECT_EQ(p.class_of(9), 4);
  EXPECT_EQ(p.class_of(10), 5);
  EXPECT_EQ(p.rounded_size(4), 8);
}

TEST(RoundingParams, RoundedSizeNeverExceedsOriginal) {
  for (Time target : {17, 30, 100, 999}) {
    for (int k : {2, 3, 4, 6}) {
      const RoundingParams p = RoundingParams::make(target, k);
      for (Time t = 1; t <= target; ++t) {
        if (!p.is_long(t)) continue;
        const int c = p.class_of(t);
        EXPECT_GE(c, 1) << "t=" << t << " T=" << target << " k=" << k;
        EXPECT_LE(c, k * k);
        EXPECT_LE(p.rounded_size(c), t);
        EXPECT_GT(p.rounded_size(c + 1), t);  // t < (c+1)*unit
      }
    }
  }
}

TEST(RoundingParams, RejectsBadInputs) {
  EXPECT_THROW((void)RoundingParams::make(0, 4), InvalidArgumentError);
  EXPECT_THROW((void)RoundingParams::make(10, 0), InvalidArgumentError);
}

TEST(PartitionJobs, SplitsAtTOverK) {
  const Instance instance(2, {8, 7, 30, 1, 9});
  const RoundingParams p = RoundingParams::make(30, 4);  // threshold 7.5
  const JobPartition partition = partition_jobs(instance, p);
  EXPECT_EQ(partition.long_jobs, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(partition.short_jobs, (std::vector<int>{1, 3}));
}

TEST(PartitionJobs, AllShortWhenKIsOne) {
  // k = 1: long would need t > T, impossible while T >= max t.
  const Instance instance(2, {5, 9, 3});
  const RoundingParams p = RoundingParams::make(9, 1);
  const JobPartition partition = partition_jobs(instance, p);
  EXPECT_TRUE(partition.long_jobs.empty());
  EXPECT_EQ(partition.short_jobs.size(), 3u);
}

TEST(RoundLongJobs, GroupsJobsByClassInAscendingOrder) {
  // T = 30, k = 4, unit = 2. Long jobs: 8,9 -> class 4; 11 -> class 5;
  // 30 -> class 15.
  const Instance instance(3, {8, 11, 9, 30, 2});
  const RoundingParams p = RoundingParams::make(30, 4);
  const JobPartition partition = partition_jobs(instance, p);
  const RoundedInstance rounded = round_long_jobs(instance, partition, p);

  ASSERT_EQ(rounded.dims(), 3);
  EXPECT_EQ(rounded.class_index, (std::vector<int>{4, 5, 15}));
  EXPECT_EQ(rounded.class_size, (std::vector<Time>{8, 10, 30}));
  EXPECT_EQ(rounded.class_count, (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(rounded.class_jobs[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(rounded.class_jobs[1], (std::vector<int>{1}));
  EXPECT_EQ(rounded.class_jobs[2], (std::vector<int>{3}));
  EXPECT_EQ(rounded.total_long_jobs, 4);
}

TEST(RoundLongJobs, EmptyWhenThereAreNoLongJobs) {
  const Instance instance(2, {1, 2, 3});
  const RoundingParams p = RoundingParams::make(30, 4);
  const RoundedInstance rounded =
      round_long_jobs(instance, partition_jobs(instance, p), p);
  EXPECT_EQ(rounded.dims(), 0);
  EXPECT_EQ(rounded.total_long_jobs, 0);
}

TEST(RoundLongJobs, RejectsJobsAboveTheTarget) {
  // A job longer than T violates the bisection invariant T >= max t.
  const Instance instance(2, {40});
  const RoundingParams p = RoundingParams::make(30, 4);
  const JobPartition partition = partition_jobs(instance, p);
  EXPECT_THROW((void)round_long_jobs(instance, partition, p), InternalError);
}

TEST(RoundLongJobs, ClassCountsSumToLongJobs) {
  const Instance instance(4, {20, 25, 30, 15, 18, 22, 9, 5});
  const RoundingParams p = RoundingParams::make(30, 4);
  const JobPartition partition = partition_jobs(instance, p);
  const RoundedInstance rounded = round_long_jobs(instance, partition, p);
  int total = 0;
  for (int c : rounded.class_count) total += c;
  EXPECT_EQ(total, static_cast<int>(partition.long_jobs.size()));
  EXPECT_EQ(rounded.total_long_jobs, total);
}

}  // namespace
}  // namespace pcmax
