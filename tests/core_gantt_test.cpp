#include "core/gantt.hpp"

#include <gtest/gtest.h>

#include "algo/lpt.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(Gantt, RendersOneRowPerMachinePlusScaleLine) {
  const Instance instance(3, {9, 5, 4, 6});
  const SolverResult lpt = LptSolver().solve(instance);
  const std::string chart = render_gantt(instance, lpt.schedule);
  int lines = 0;
  for (char ch : chart) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // 3 machines + scale line
  EXPECT_NE(chart.find("m0 "), std::string::npos);
  EXPECT_NE(chart.find("m2 "), std::string::npos);
  EXPECT_NE(chart.find("scale:"), std::string::npos);
}

TEST(Gantt, MarksTheCriticalMachine) {
  const Instance instance(2, {10, 1});
  Schedule schedule(2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  const std::string chart = render_gantt(instance, schedule);
  EXPECT_NE(chart.find("<- makespan"), std::string::npos);
  EXPECT_NE(chart.find("load 10"), std::string::npos);
  EXPECT_NE(chart.find("load 1"), std::string::npos);
}

TEST(Gantt, ShowsJobLabelsWhenRequestedAndTheyFit) {
  const Instance instance(1, {100});
  Schedule schedule(1);
  schedule.assign(0, 0);
  GanttOptions options;
  options.width = 40;
  EXPECT_NE(render_gantt(instance, schedule, options).find("j0"),
            std::string::npos);
  options.show_job_ids = false;
  EXPECT_EQ(render_gantt(instance, schedule, options).find("j0"),
            std::string::npos);
}

TEST(Gantt, EveryJobProducesABlock) {
  const Instance instance(2, {1, 1, 1, 1, 1, 1, 1, 1});
  Schedule schedule(2);
  for (int j = 0; j < 8; ++j) schedule.assign(j % 2, j);
  GanttOptions options;
  options.width = 8;  // blocks smaller than labels: just hashes
  const std::string chart = render_gantt(instance, schedule, options);
  // 4 jobs per machine -> 5 '|' separators per row (incl. leading one).
  const std::string row0 = chart.substr(0, chart.find('\n'));
  EXPECT_EQ(static_cast<int>(std::count(row0.begin(), row0.end(), '|')), 5);
}

TEST(Gantt, ValidatesItsInputs) {
  const Instance instance(2, {3, 4});
  Schedule incomplete(2);
  incomplete.assign(0, 0);
  EXPECT_THROW((void)render_gantt(instance, incomplete), InvalidArgumentError);

  Schedule complete(2);
  complete.assign(0, 0);
  complete.assign(1, 1);
  GanttOptions too_narrow;
  too_narrow.width = 2;
  EXPECT_THROW((void)render_gantt(instance, complete, too_narrow),
               InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
