// Canonicalization + fingerprinting: permutation invariance, sensitivity,
// lift/project correctness, and cross-platform stability (pinned values).
#include "core/fingerprint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/instance_gen.hpp"

namespace pcmax {
namespace {

Instance permuted(const Instance& instance, std::uint64_t seed) {
  std::vector<Time> times(instance.times().begin(), instance.times().end());
  std::mt19937_64 rng(seed);
  std::shuffle(times.begin(), times.end(), rng);
  return Instance(instance.machines(), std::move(times));
}

TEST(Fingerprint, HexIs32LowercaseDigits) {
  const Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(fp.to_hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Fingerprint{}.to_hex(), std::string(32, '0'));
}

TEST(Fingerprint, OrderingAndEquality) {
  const Fingerprint a{1, 2};
  const Fingerprint b{1, 3};
  const Fingerprint c{2, 0};
  EXPECT_EQ(a, (Fingerprint{1, 2}));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(FingerprintHasher{}(a), FingerprintHasher{}(c));
}

TEST(Fingerprinter, LengthPrefixingSeparatesByteSplits) {
  Fingerprinter ab_c;
  ab_c.absorb_bytes("ab");
  ab_c.absorb_bytes("c");
  Fingerprinter a_bc;
  a_bc.absorb_bytes("a");
  a_bc.absorb_bytes("bc");
  EXPECT_NE(ab_c.finish(), a_bc.finish());
}

TEST(Fingerprinter, FinishIsSideEffectFree) {
  Fingerprinter hasher;
  hasher.absorb(42);
  const Fingerprint first = hasher.finish();
  EXPECT_EQ(first, hasher.finish());
  hasher.absorb(43);
  EXPECT_NE(first, hasher.finish());
}

TEST(CanonicalInstance, SortsTimesAndKeepsStablePermutation) {
  const Instance instance(2, {5, 3, 5, 1, 3});
  const CanonicalInstance canonical(instance);
  const std::vector<Time> expected{1, 3, 3, 5, 5};
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                         canonical.instance().times().begin()));
  // Stable: ties keep submission order. Ranks of the two 3s are jobs 1, 4;
  // ranks of the two 5s are jobs 0, 2.
  EXPECT_EQ(canonical.permutation(), (std::vector<int>{3, 1, 4, 0, 2}));
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(instance.time(canonical.permutation()[r]),
              canonical.instance().time(static_cast<int>(r)));
  }
}

TEST(CanonicalInstance, FingerprintIsPermutationInvariant) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 5, 40, 7, 0);
  const CanonicalInstance base(instance);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CanonicalInstance twin(permuted(instance, seed));
    EXPECT_EQ(base.fingerprint(), twin.fingerprint());
    EXPECT_EQ(base.instance(), twin.instance());
  }
}

TEST(CanonicalInstance, FingerprintSeparatesNearbyInstances) {
  const Instance base(4, {2, 3, 5, 7, 11});
  const CanonicalInstance fp_base(base);
  // One more machine.
  EXPECT_NE(fp_base.fingerprint(),
            CanonicalInstance(Instance(5, {2, 3, 5, 7, 11})).fingerprint());
  // One changed time.
  EXPECT_NE(fp_base.fingerprint(),
            CanonicalInstance(Instance(4, {2, 3, 5, 7, 12})).fingerprint());
  // One dropped job.
  EXPECT_NE(fp_base.fingerprint(),
            CanonicalInstance(Instance(4, {2, 3, 5, 7})).fingerprint());
}

TEST(CanonicalInstance, LiftProjectRoundTrips) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 4, 25, 11, 0);
  const CanonicalInstance canonical(instance);
  std::mt19937_64 rng(3);
  std::vector<int> assignment(static_cast<std::size_t>(instance.jobs()));
  for (int& machine : assignment) {
    machine = static_cast<int>(rng() % static_cast<std::uint64_t>(
                                           instance.machines()));
  }
  const Schedule lifted = canonical.lift(assignment);
  lifted.validate(instance);
  EXPECT_EQ(canonical.project(lifted), assignment);
  // Lifting preserves the load multiset (rank r and job perm[r] have equal
  // times), hence the makespan.
  std::vector<Time> canonical_loads(
      static_cast<std::size_t>(instance.machines()), 0);
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    canonical_loads[static_cast<std::size_t>(assignment[r])] +=
        canonical.instance().time(static_cast<int>(r));
  }
  std::vector<Time> lifted_loads = lifted.loads(instance);
  std::sort(canonical_loads.begin(), canonical_loads.end());
  std::sort(lifted_loads.begin(), lifted_loads.end());
  EXPECT_EQ(canonical_loads, lifted_loads);
}

TEST(CanonicalInstance, SweepHasNoCollisions) {
  // Distinct problems across the paper families must map to distinct keys;
  // permuted twins must collide exactly.
  std::map<std::string, Instance> seen;
  int distinct = 0;
  for (const InstanceFamily family : all_families()) {
    for (int m : {2, 3, 5}) {
      for (int n : {8, 13, 21}) {
        for (std::uint64_t index = 0; index < 4; ++index) {
          const Instance instance = generate_instance(family, m, n, 99, index);
          const CanonicalInstance canonical(instance);
          const std::string key = canonical.fingerprint().to_hex();
          const auto [it, inserted] = seen.emplace(key, canonical.instance());
          if (inserted) {
            ++distinct;
          } else {
            // Same key must mean the same canonical problem.
            EXPECT_EQ(it->second, canonical.instance()) << key;
          }
          EXPECT_EQ(CanonicalInstance(permuted(instance, index + 1))
                        .fingerprint()
                        .to_hex(),
                    key);
        }
      }
    }
  }
  EXPECT_GE(distinct, 100);
}

TEST(RequestFingerprint, BindsEpsilonIntoTheKey) {
  const Instance instance(3, {4, 8, 15, 16, 23, 42});
  const CanonicalInstance canonical(instance);
  const Fingerprint eps03 = request_fingerprint(canonical, 0.3);
  EXPECT_EQ(eps03, request_fingerprint(canonical, 0.3));
  EXPECT_NE(eps03, request_fingerprint(canonical, 0.2));
  EXPECT_NE(eps03, canonical.fingerprint());
}

TEST(ShardIndex, IsDeterministicAndInRange) {
  for (int m = 2; m <= 5; ++m) {
    for (std::uint64_t variant = 0; variant < 16; ++variant) {
      const Instance instance = generate_instance(
          InstanceFamily::kUniform1To100, m, 4 * m, 59, variant);
      const Fingerprint key =
          request_fingerprint(CanonicalInstance(instance), 0.2);
      for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u, 16u, 64u}) {
        const std::size_t shard = shard_index(key, shards);
        EXPECT_LT(shard, shards);
        EXPECT_EQ(shard, shard_index(key, shards));  // pure function
      }
      EXPECT_EQ(shard_index(key, 1), 0u);
    }
  }
}

TEST(ShardIndex, SpreadsKeysAcrossShards) {
  // Not a uniformity proof — just a tripwire against a broken fold that
  // collapses the 128-bit key onto a few residues (e.g. using only the low
  // bits of one lane). 256 distinct keys over 8 shards: every shard must
  // see a healthy share.
  constexpr std::size_t kShards = 8;
  std::vector<int> population(kShards, 0);
  for (std::uint64_t variant = 0; variant < 256; ++variant) {
    const Instance instance = generate_instance(
        InstanceFamily::kUniform1To100, 4, 16, 83, variant);
    const Fingerprint key =
        request_fingerprint(CanonicalInstance(instance), 0.2);
    ++population[shard_index(key, kShards)];
  }
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(population[shard], 8) << "shard " << shard << " starved";
    EXPECT_LT(population[shard], 64) << "shard " << shard << " overloaded";
  }
}

TEST(ShardIndex, PinnedReferenceValues) {
  // shard_index routes live traffic: a silent change would strand every
  // recorded per-shard trace. Pin it alongside the fingerprint itself.
  const CanonicalInstance canonical(Instance(3, {4, 8, 15, 16, 23, 42}));
  const Fingerprint key = request_fingerprint(canonical, 0.3);
  EXPECT_EQ(shard_index(key, 2), 1u);
  EXPECT_EQ(shard_index(key, 8), 5u);
  EXPECT_EQ(shard_index(key, 16), 13u);
}

TEST(Fingerprint, PinnedReferenceValues) {
  // Golden files embed fingerprints, so the hash must never change silently.
  // These values pin the algorithm (fixed seeds, two-lane splitmix64); if
  // this test fails, every golden file embedding fingerprints is stale too.
  const CanonicalInstance canonical(Instance(3, {4, 8, 15, 16, 23, 42}));
  EXPECT_EQ(canonical.fingerprint().to_hex(),
            CanonicalInstance(Instance(3, {42, 23, 16, 15, 8, 4}))
                .fingerprint()
                .to_hex());
  const std::string instance_hex = canonical.fingerprint().to_hex();
  const std::string request_hex = request_fingerprint(canonical, 0.3).to_hex();
  // Recorded from the reference implementation (see commit introducing it).
  EXPECT_EQ(instance_hex, "687375a7b3626862645667c4fae4b7c3");
  EXPECT_EQ(request_hex, "76a2978c8505f97e9a422775156ac488");
}

TEST(Fingerprint, PinnedVariantReferenceValues) {
  // Variant payloads participate in canonicalization: the same multiset
  // under each variant tag lands on a distinct, stable fingerprint. The
  // classic value above must stay untouched by the variant layer; these two
  // pin the capacity (sequential v2 sponge) and incremental (commutative
  // two-lane) domains.
  const std::vector<Time> times{4, 8, 15, 16, 23, 42};
  const CanonicalInstance capped(
      Instance::capacity_restricted(3, std::vector<Time>(times), 2));
  const CanonicalInstance incremental(
      Instance::incremental(3, std::vector<Time>(times)));
  EXPECT_EQ(capped.fingerprint().to_hex(),
            "11a614078643df555b4adb362085731c");
  EXPECT_EQ(incremental.fingerprint().to_hex(),
            "3a7defe5d1a6da49bc16813d5e6dd3f8");
  // The capacity payload is part of identity: a different B is a different
  // canonical instance.
  EXPECT_NE(CanonicalInstance(
                Instance::capacity_restricted(3, std::vector<Time>(times), 1))
                .fingerprint(),
            capped.fingerprint());
  // The O(1) accumulator and the full canonicalization share one domain.
  EXPECT_EQ(IncrementalFingerprint(3, std::span<const Time>(times))
                .fingerprint(),
            incremental.fingerprint());
}

}  // namespace
}  // namespace pcmax
