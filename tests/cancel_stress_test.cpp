// Concurrency stress for cooperative cancellation (ctest label: sanitize).
//
// These tests race real cancellations against in-flight parallel solves and
// hammer one token from many threads. They assert the library-level
// guarantees — the solve either finishes or throws the typed error, the
// pool stays reusable, nothing hangs — and a PCMAX_SANITIZE=thread build
// (`ctest -L sanitize`) additionally proves the paths data-race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "algo/ptas/ptas.hpp"
#include "core/instance_gen.hpp"
#include "core/resilient_solver.hpp"
#include "core/solve_context.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(CancelStress, ManyThreadsHammerOneToken) {
  const CancellationToken token =
      CancellationToken::linked(CancellationToken::make(),
                                Deadline::after_seconds(3600.0));
  std::atomic<bool> go{false};
  std::atomic<int> observed_stops{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      if (t == 0) token.request_cancel();
      CancelCheck check(token, 16);
      try {
        // The flag is sticky, so every thread observes the stop within one
        // amortisation period no matter how the threads are scheduled.
        for (;;) check.poll();
      } catch (const CancelledError&) {
        observed_stops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_EQ(observed_stops.load(), 8);
}

TEST(CancelStress, ConcurrentCancelDuringParallelDpEngines) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 8, 60, 5, 0);
  ThreadPoolExecutor executor(4);
  for (DpEngine engine : {DpEngine::kParallelScan, DpEngine::kParallelBucketed,
                          DpEngine::kSpmd}) {
    for (int round = 0; round < 4; ++round) {
      CancellationToken token = CancellationToken::make();
      PtasOptions options;
      options.engine = engine;
      options.executor = &executor;
      options.spmd_threads = 4;
      options.epsilon = 0.12;  // big enough DP that cancels land mid-flight
      std::thread canceller([token, round] {
        std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
        token.request_cancel();
      });
      try {
        const SolverResult result =
            PtasSolver(options).solve(instance, SolveContext::with_token(token));
        result.schedule.validate(instance);  // raced past the cancel: fine
      } catch (const CancelledError&) {
      } catch (const DeadlineExceededError&) {
      }
      canceller.join();
    }
  }
  // The pool survived every cancelled region: a clean solve still works.
  PtasOptions options;
  options.engine = DpEngine::kParallelScan;
  options.executor = &executor;
  const SolverResult result = PtasSolver(options).solve(instance);
  result.schedule.validate(instance);
}

TEST(CancelStress, DeadlineExpiryRacesTheSolve) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 8, 60, 5, 0);
  ThreadPoolExecutor executor(4);
  for (int round = 0; round < 6; ++round) {
    PtasOptions options;
    options.engine = DpEngine::kParallelBucketed;
    options.executor = &executor;
    options.epsilon = 0.12;
    SolveContext context;
    context.deadline = Deadline::after_ms(round);
    try {
      const SolverResult result = PtasSolver(options).solve(instance, context);
      result.schedule.validate(instance);
    } catch (const DeadlineExceededError&) {
    } catch (const CancelledError&) {
    }
  }
}

TEST(CancelStress, ResilientSolverUnderConcurrentCancelAlwaysReturns) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 8, 60, 5, 0);
  for (int round = 0; round < 4; ++round) {
    ResilientOptions options;
    options.ptas.engine = DpEngine::kSpmd;
    options.ptas.spmd_threads = 4;
    options.ptas.epsilon = 0.12;
    const CancellationToken token = CancellationToken::make();
    std::thread canceller([token, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
      token.request_cancel();
    });
    const SolverResult result =
        ResilientSolver(options).solve(instance, SolveContext::with_token(token));
    canceller.join();
    result.schedule.validate(instance);  // never throws, always complete
  }
}

}  // namespace
}  // namespace pcmax
