// Cross-checks the DP against an independent algorithm: OPT(N) — the
// minimum number of machines that fit the rounded jobs within T — must agree
// with the branch-and-bound packing decision run on the same job multiset.
// Two entirely different solvers (counting DP over configurations vs DFS
// packing with dominance pruning) agreeing across random shapes is strong
// evidence both are right.
// A second family of cross-checks covers the parallel realisations: every
// ParallelDpVariant under every LoopSchedule must reproduce the sequential
// bottom-up table byte for byte (values AND argmin choices) and perform the
// identical number of entry computations, across randomized shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_chunk_graph.hpp"
#include "algo/ptas/dp_parallel.hpp"
#include "algo/ptas/dp_sequential.hpp"
#include "core/instance.hpp"
#include "exact/bin_feasibility.hpp"
#include "obs/metrics.hpp"
#include "parallel/executor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

RoundedInstance make_rounded(const std::vector<Time>& sizes,
                             const std::vector<int>& counts, Time target) {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(target, 4);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    rounded.class_index.push_back(static_cast<int>(d) + 1);
    rounded.class_size.push_back(sizes[d]);
    rounded.class_count.push_back(counts[d]);
    rounded.class_jobs.emplace_back();
    rounded.total_long_jobs += counts[d];
  }
  return rounded;
}

/// Minimum machines for the rounded jobs within `target`, via the
/// independent packing decision (binary search over machine counts).
int min_machines_by_packing(const std::vector<Time>& sizes,
                            const std::vector<int>& counts, Time target) {
  std::vector<Time> jobs;
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    for (int c = 0; c < counts[d]; ++c) jobs.push_back(sizes[d]);
  }
  if (jobs.empty()) return 0;
  for (int machines = 1; machines <= static_cast<int>(jobs.size()); ++machines) {
    const Instance instance(machines, jobs);
    const Feasibility answer = pack_within(instance, target, {}, nullptr, nullptr);
    EXPECT_NE(answer, Feasibility::kUnknown);
    if (answer == Feasibility::kFeasible) return machines;
  }
  ADD_FAILURE() << "one machine per job must always fit (sizes <= target)";
  return static_cast<int>(jobs.size());
}

TEST(DpCrossCheck, AgreesWithPackingOnFixedShapes) {
  const struct {
    std::vector<Time> sizes;
    std::vector<int> counts;
    Time target;
  } cases[] = {
      {{6, 11}, {2, 3}, 30},
      {{9, 13, 17}, {3, 2, 2}, 40},
      {{20}, {5}, 30},
      {{10, 15}, {6, 4}, 30},
      {{7, 8, 9, 10}, {2, 1, 2, 1}, 31},
      {{25, 26}, {3, 3}, 52},
  };
  for (const auto& test_case : cases) {
    const RoundedInstance rounded =
        make_rounded(test_case.sizes, test_case.counts, test_case.target);
    const StateSpace space(test_case.counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_EQ(run.machines_needed,
              min_machines_by_packing(test_case.sizes, test_case.counts,
                                      test_case.target))
        << "T=" << test_case.target;
  }
}

TEST(DpCrossCheck, AgreesWithPackingOnRandomShapes) {
  Xoshiro256StarStar rng(0xC0FFEE);
  for (int round = 0; round < 25; ++round) {
    const Time target = uniform_int(rng, 20, 60);
    const int dims = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      // Long-ish sizes in (target/4, target]: mimics real rounded classes.
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 0, 4)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_EQ(run.machines_needed,
              min_machines_by_packing(sizes, counts, target))
        << "round " << round << " T=" << target;
  }
}

TEST(DpCrossCheck, MachineCountMonotoneInTarget) {
  // Raising T can only reduce OPT(N) for a fixed rounded job set.
  const std::vector<Time> sizes{9, 14};
  const std::vector<int> counts{3, 3};
  std::int32_t previous = INT32_MAX;
  for (Time target = 14; target <= 70; target += 7) {
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_LE(run.machines_needed, previous) << "T=" << target;
    previous = run.machines_needed;
  }
}

/// Asserts `run` reproduces `reference` byte for byte: same OPT(N), same
/// value and same argmin choice at every entry.
void expect_identical_tables(const DpRun& reference, const DpRun& run,
                             const std::string& what) {
  ASSERT_EQ(run.table.size(), reference.table.size()) << what;
  EXPECT_EQ(run.machines_needed, reference.machines_needed) << what;
  for (std::size_t i = 0; i < reference.table.size(); ++i) {
    ASSERT_EQ(run.table.value(i), reference.table.value(i))
        << what << " value at entry " << i;
    ASSERT_EQ(run.table.choice(i), reference.table.choice(i))
        << what << " choice at entry " << i;
  }
}

TEST(DpCrossCheck, AllVariantsAndSchedulesMatchSequentialOnRandomShapes) {
  constexpr ParallelDpVariant kVariants[] = {ParallelDpVariant::kScanPerLevel,
                                             ParallelDpVariant::kBucketed,
                                             ParallelDpVariant::kSpmd};
  constexpr LoopSchedule kSchedules[] = {
      LoopSchedule::kStatic, LoopSchedule::kRoundRobin, LoopSchedule::kDynamic};
  Xoshiro256StarStar rng(0xDECADE);
  ThreadPoolExecutor executor(4);
  for (int round = 0; round < 8; ++round) {
    const Time target = uniform_int(rng, 25, 60);
    const int dims = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 5)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun reference = dp_bottom_up(rounded, space, configs);
    ASSERT_EQ(reference.stats.entries_computed, space.size());

    for (const ParallelDpVariant variant : kVariants) {
      for (const LoopSchedule schedule : kSchedules) {
        for (const LevelIteration iteration :
             {LevelIteration::kWalker, LevelIteration::kIndexed}) {
          ParallelDpOptions options;
          options.executor = &executor;
          options.variant = variant;
          options.schedule = schedule;
          options.spmd_threads = 4;
          options.iteration = iteration;
          const DpRun run = dp_parallel(rounded, space, configs, options);
          const std::string what = parallel_dp_variant_name(variant) + "/" +
                                   loop_schedule_name(schedule) + "/" +
                                   level_iteration_name(iteration) + " round " +
                                   std::to_string(round);
          expect_identical_tables(reference, run, what);
          // Entries-processed totals are identical too: every realisation
          // computes each of the sigma entries exactly once, independent of
          // how iterations were assigned to workers.
          EXPECT_EQ(run.stats.entries_computed, reference.stats.entries_computed)
              << what;
        }
      }
    }
  }
}

TEST(DpCrossCheck, PruningAndTableModesAgreeAcrossKernelsAndVariants) {
  // The level-prefix bound, the values-only probe mode, and the walker
  // iteration are pure optimisations: every combination must reproduce the
  // unpruned full-table reference — byte for byte where choices exist, value
  // for value everywhere — while only the scan accounting changes.
  Xoshiro256StarStar rng(0xFACADE);
  ThreadPoolExecutor executor(4);
  for (int round = 0; round < 6; ++round) {
    const Time target = uniform_int(rng, 25, 60);
    const int dims = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 5)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const std::string tag = " round " + std::to_string(round);

    // Unpruned reference: the pre-optimisation kernel's exact behaviour.
    const DpRun unpruned =
        dp_bottom_up(rounded, space, configs, DpKernel::kGlobalConfigs, {},
                     DpTableMode::kValuesAndChoices, LevelPruning::kOff);
    EXPECT_EQ(unpruned.stats.configs_pruned, 0u);
    EXPECT_EQ(unpruned.stats.config_scans,
              (space.size() - 1) * configs.count());

    // Level-pruned vs unpruned: byte-identical, strictly fewer-or-equal
    // scans, and exact scan/prune conservation.
    const DpRun pruned = dp_bottom_up(rounded, space, configs);
    expect_identical_tables(unpruned, pruned, "pruned" + tag);
    EXPECT_LE(pruned.stats.config_scans, unpruned.stats.config_scans);
    EXPECT_EQ(pruned.stats.config_scans + pruned.stats.configs_pruned,
              unpruned.stats.config_scans);

    // The paper-faithful per-entry enumeration kernel agrees too (its
    // canonical argmin falls out of the lexicographic enumeration order).
    const DpRun enumerated = dp_bottom_up(rounded, space, configs,
                                          DpKernel::kPerEntryEnum);
    expect_identical_tables(unpruned, enumerated, "per-entry-enum" + tag);

    // Values-only mode: same values and OPT(N), no choice array.
    const DpRun values_only =
        dp_bottom_up(rounded, space, configs, DpKernel::kGlobalConfigs, {},
                     DpTableMode::kValuesOnly);
    EXPECT_FALSE(values_only.table.has_choices());
    EXPECT_EQ(values_only.machines_needed, unpruned.machines_needed);
    for (std::size_t i = 0; i < space.size(); ++i) {
      ASSERT_EQ(values_only.table.value(i), unpruned.table.value(i))
          << "values-only entry " << i << tag;
    }

    // Parallel values-only probes (the bisection fast path) across both
    // iteration modes: value-identical, conservation holds per run.
    for (const ParallelDpVariant variant :
         {ParallelDpVariant::kBucketed, ParallelDpVariant::kSpmd}) {
      for (const LevelIteration iteration :
           {LevelIteration::kWalker, LevelIteration::kIndexed}) {
        ParallelDpOptions options;
        options.executor = &executor;
        options.variant = variant;
        options.spmd_threads = 4;
        options.iteration = iteration;
        options.table_mode = DpTableMode::kValuesOnly;
        const DpRun run = dp_parallel(rounded, space, configs, options);
        const std::string what = parallel_dp_variant_name(variant) + "/" +
                                 level_iteration_name(iteration) +
                                 " values-only" + tag;
        EXPECT_FALSE(run.table.has_choices()) << what;
        EXPECT_EQ(run.machines_needed, unpruned.machines_needed) << what;
        for (std::size_t i = 0; i < space.size(); ++i) {
          ASSERT_EQ(run.table.value(i), unpruned.table.value(i))
              << what << " entry " << i;
        }
        EXPECT_EQ(run.stats.config_scans + run.stats.configs_pruned,
                  unpruned.stats.config_scans)
            << what;
        EXPECT_LE(run.stats.config_scans, unpruned.stats.config_scans) << what;
      }
    }
  }
}

TEST(DpCrossCheck, SyncModePoolThreadMatrixMatchesSequential) {
  // The determinism matrix gating the work-stealing pool and the
  // barrier-free counters sweep:
  //   {bucketed, spmd} x {walker, indexed} x {barrier, counters}
  //   x {threadpool, workstealing} x threads {1, 3, 8}
  // Every admissible combination must reproduce the sequential bottom-up
  // table byte for byte (values AND argmin choices), compute each entry
  // exactly once, and conserve scans + pruned against the unpruned scan
  // total. (bucketed+counters needs the work-stealing executor — the
  // threadpool cell is the rejection asserted after the matrix.)
  Xoshiro256StarStar rng(0xB00C5);
  for (int round = 0; round < 3; ++round) {
    const Time target = uniform_int(rng, 25, 60);
    const int dims = static_cast<int>(uniform_int(rng, 2, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 5)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun unpruned =
        dp_bottom_up(rounded, space, configs, DpKernel::kGlobalConfigs, {},
                     DpTableMode::kValuesAndChoices, LevelPruning::kOff);
    const DpRun reference = dp_bottom_up(rounded, space, configs);

    for (const unsigned threads : {1u, 3u, 8u}) {
      for (const char* backend : {"threadpool", "workstealing"}) {
        const std::unique_ptr<Executor> executor =
            make_executor(backend, threads);
        for (const ParallelDpVariant variant :
             {ParallelDpVariant::kBucketed, ParallelDpVariant::kSpmd}) {
          for (const LevelIteration iteration :
               {LevelIteration::kWalker, LevelIteration::kIndexed}) {
            for (const DpSyncMode sync :
                 {DpSyncMode::kBarrier, DpSyncMode::kCounters}) {
              if (sync == DpSyncMode::kCounters &&
                  variant == ParallelDpVariant::kBucketed &&
                  std::string(backend) != "workstealing") {
                continue;  // inadmissible: rejection asserted below
              }
              ParallelDpOptions options;
              options.executor = executor.get();
              options.variant = variant;
              options.spmd_threads = threads;
              options.iteration = iteration;
              options.sync_mode = sync;
              const std::string what =
                  parallel_dp_variant_name(variant) + "/" +
                  level_iteration_name(iteration) + "/" +
                  dp_sync_mode_name(sync) + "/" + backend + "/t" +
                  std::to_string(threads) + " round " + std::to_string(round);
              const DpRun run = dp_parallel(rounded, space, configs, options);
              expect_identical_tables(reference, run, what);
              EXPECT_EQ(run.stats.entries_computed, space.size()) << what;
              EXPECT_EQ(run.stats.config_scans + run.stats.configs_pruned,
                        unpruned.stats.config_scans)
                  << what;

              // Values-only probe mode of the same cell: value equality
              // against the reference, no choice array.
              options.table_mode = DpTableMode::kValuesOnly;
              const DpRun probe = dp_parallel(rounded, space, configs, options);
              EXPECT_FALSE(probe.table.has_choices()) << what;
              EXPECT_EQ(probe.machines_needed, reference.machines_needed)
                  << what;
              for (std::size_t i = 0; i < space.size(); ++i) {
                ASSERT_EQ(probe.table.value(i), reference.table.value(i))
                    << what << " values-only entry " << i;
              }
              EXPECT_EQ(probe.stats.config_scans + probe.stats.configs_pruned,
                        unpruned.stats.config_scans)
                  << what;
            }
          }
        }
      }
    }

    // Inadmissible cells reject loudly instead of silently degrading.
    const std::unique_ptr<Executor> threadpool = make_executor("threadpool", 2);
    ParallelDpOptions bad;
    bad.executor = threadpool.get();
    bad.variant = ParallelDpVariant::kBucketed;
    bad.sync_mode = DpSyncMode::kCounters;
    EXPECT_THROW(dp_parallel(rounded, space, configs, bad),
                 InvalidArgumentError);
    bad.variant = ParallelDpVariant::kScanPerLevel;
    EXPECT_THROW(dp_parallel(rounded, space, configs, bad),
                 InvalidArgumentError);
  }
}

TEST(DpCrossCheck, AllKernelsMatchAcrossEnginesIterationSyncAndTableModes) {
  // The kernel axis of the determinism matrix: forcing every fits-test
  // kernel (auto, scalar, SWAR, AVX2, AVX-512 — unsupported vector kernels
  // degrade down the chain, which is itself part of the contract) under
  // every engine x iteration x sync x table-mode combination must reproduce
  // the sequential bottom-up reference byte for byte. The work-stealing
  // executor keeps the bucketed+counters cell admissible.
  constexpr DpKernel kKernels[] = {DpKernel::kGlobalConfigs, DpKernel::kScalar,
                                   DpKernel::kSwar, DpKernel::kAvx2,
                                   DpKernel::kAvx512};
  Xoshiro256StarStar rng(0x51D3);
  WorkStealingExecutor executor(4);
  for (int round = 0; round < 2; ++round) {
    const Time target = uniform_int(rng, 25, 60);
    const int dims = static_cast<int>(uniform_int(rng, 2, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 2, 6)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun reference = dp_bottom_up(rounded, space, configs);

    for (const DpKernel kernel : kKernels) {
      const std::string kname = dp_kernel_name(kernel);

      // Sequential engines.
      DpOptions seq;
      seq.kernel = kernel;
      const DpRun bottom_up = dp_bottom_up(rounded, space, configs, seq);
      expect_identical_tables(reference, bottom_up,
                              "bottom-up/" + kname + " round " +
                                  std::to_string(round));
      const DpRun top_down = dp_top_down(rounded, space, configs, seq);
      EXPECT_EQ(top_down.machines_needed, reference.machines_needed)
          << "top-down/" << kname;
      for (std::size_t i = 0; i < space.size(); ++i) {
        if (top_down.table.value(i) == DpTable::kUnset) continue;
        ASSERT_EQ(top_down.table.value(i), reference.table.value(i))
            << "top-down/" << kname << " entry " << i;
      }

      // Parallel engines: variant x iteration x sync x table mode.
      for (const ParallelDpVariant variant :
           {ParallelDpVariant::kBucketed, ParallelDpVariant::kSpmd}) {
        for (const LevelIteration iteration :
             {LevelIteration::kWalker, LevelIteration::kIndexed}) {
          for (const DpSyncMode sync :
               {DpSyncMode::kBarrier, DpSyncMode::kCounters}) {
            for (const DpTableMode mode :
                 {DpTableMode::kValuesAndChoices, DpTableMode::kValuesOnly}) {
              ParallelDpOptions options;
              options.executor = &executor;
              options.variant = variant;
              options.spmd_threads = 4;
              options.kernel = kernel;
              options.iteration = iteration;
              options.sync_mode = sync;
              options.table_mode = mode;
              const DpRun run = dp_parallel(rounded, space, configs, options);
              const std::string what =
                  parallel_dp_variant_name(variant) + "/" +
                  level_iteration_name(iteration) + "/" +
                  dp_sync_mode_name(sync) + "/" + kname +
                  (mode == DpTableMode::kValuesOnly ? "/values-only" : "") +
                  " round " + std::to_string(round);
              if (mode == DpTableMode::kValuesAndChoices) {
                expect_identical_tables(reference, run, what);
              } else {
                EXPECT_FALSE(run.table.has_choices()) << what;
                EXPECT_EQ(run.machines_needed, reference.machines_needed)
                    << what;
                for (std::size_t i = 0; i < space.size(); ++i) {
                  ASSERT_EQ(run.table.value(i), reference.table.value(i))
                      << what << " entry " << i;
                }
              }
              EXPECT_EQ(run.stats.entries_computed, space.size()) << what;
              EXPECT_EQ(run.stats.kernel, resolve_dp_kernel(kernel)) << what;
            }
          }
        }
      }
    }
  }
}

TEST(DpCrossCheck, ChunkWaitsTotalIsDeterministic) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  // dp.chunk_waits counts the dependency decrements that did NOT release a
  // chunk. Every edge of the chunk graph decrements exactly once and exactly
  // one decrement releases each non-root chunk, so the total is a property
  // of the graph — total_dependencies() - (chunks - roots) — and identical
  // on every run, whatever order the work-stealing pool executed chunks in.
  const RoundedInstance rounded = make_rounded({8, 12, 19}, {4, 4, 3}, 38);
  const std::vector<int> counts{4, 4, 3};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  constexpr unsigned kThreads = 3;
  WorkStealingExecutor executor(kThreads);

  // Mirror run_counters' chunk-target choice (dp_parallel.cpp) to derive the
  // expected total from the graph itself.
  LevelWalker walker(space);
  std::uint64_t max_width = 1;
  for (int l = 0; l <= space.max_level(); ++l) {
    max_width = std::max(max_width, walker.level_size(l));
  }
  const std::size_t target =
      std::clamp(static_cast<std::size_t>(max_width / (4 * kThreads)),
                 std::size_t{16}, std::size_t{256});
  const DpChunkGraph graph = build_chunk_graph(space, target);
  const std::uint64_t expected =
      graph.total_dependencies() -
      (graph.chunks.size() - graph.level_first[1]);

  for (int run = 0; run < 3; ++run) {
    obs::Metrics metrics(kThreads);
    const obs::MetricsScope scope(metrics);
    ParallelDpOptions options;
    options.executor = &executor;
    options.variant = ParallelDpVariant::kBucketed;
    options.sync_mode = DpSyncMode::kCounters;
    dp_parallel(rounded, space, configs, options);
    EXPECT_EQ(metrics.counter_total(obs::Counter::kDpChunkWaits), expected)
        << "run " << run;
  }
}

TEST(DpCrossCheck, MetricsEntryTotalsAgreeAcrossVariantsAndSchedules) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "PCMAX_METRICS is OFF";
  // Same matrix, observed through the metrics layer: each run's per-worker
  // entry totals must sum to sigma no matter how the work was split.
  const RoundedInstance rounded = make_rounded({8, 12, 19}, {3, 3, 2}, 38);
  const StateSpace space(std::vector<int>{3, 3, 2}, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ThreadPoolExecutor executor(4);
  obs::Metrics metrics(4);
  const obs::MetricsScope scope(metrics);
  std::size_t expected_runs = 0;
  for (const ParallelDpVariant variant :
       {ParallelDpVariant::kScanPerLevel, ParallelDpVariant::kBucketed,
        ParallelDpVariant::kSpmd}) {
    for (const LoopSchedule schedule :
         {LoopSchedule::kStatic, LoopSchedule::kRoundRobin,
          LoopSchedule::kDynamic}) {
      ParallelDpOptions options;
      options.executor = &executor;
      options.variant = variant;
      options.schedule = schedule;
      options.spmd_threads = 4;
      dp_parallel(rounded, space, configs, options);
      ++expected_runs;
    }
  }
  const std::vector<obs::DpRunRecord> runs = metrics.dp_runs();
  ASSERT_EQ(runs.size(), expected_runs);
  for (const obs::DpRunRecord& run : runs) {
    std::uint64_t total = 0;
    for (const std::uint64_t entries : run.per_worker_entries) total += entries;
    EXPECT_EQ(total, space.size()) << run.variant << "/" << run.schedule;
  }
  EXPECT_EQ(metrics.counter_total(obs::Counter::kDpEntries),
            expected_runs * space.size());
}

}  // namespace
}  // namespace pcmax
