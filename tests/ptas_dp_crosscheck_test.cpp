// Cross-checks the DP against an independent algorithm: OPT(N) — the
// minimum number of machines that fit the rounded jobs within T — must agree
// with the branch-and-bound packing decision run on the same job multiset.
// Two entirely different solvers (counting DP over configurations vs DFS
// packing with dominance pruning) agreeing across random shapes is strong
// evidence both are right.
#include <gtest/gtest.h>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_sequential.hpp"
#include "core/instance.hpp"
#include "exact/bin_feasibility.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

RoundedInstance make_rounded(const std::vector<Time>& sizes,
                             const std::vector<int>& counts, Time target) {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(target, 4);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    rounded.class_index.push_back(static_cast<int>(d) + 1);
    rounded.class_size.push_back(sizes[d]);
    rounded.class_count.push_back(counts[d]);
    rounded.class_jobs.emplace_back();
    rounded.total_long_jobs += counts[d];
  }
  return rounded;
}

/// Minimum machines for the rounded jobs within `target`, via the
/// independent packing decision (binary search over machine counts).
int min_machines_by_packing(const std::vector<Time>& sizes,
                            const std::vector<int>& counts, Time target) {
  std::vector<Time> jobs;
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    for (int c = 0; c < counts[d]; ++c) jobs.push_back(sizes[d]);
  }
  if (jobs.empty()) return 0;
  for (int machines = 1; machines <= static_cast<int>(jobs.size()); ++machines) {
    const Instance instance(machines, jobs);
    const Feasibility answer = pack_within(instance, target, {}, nullptr, nullptr);
    EXPECT_NE(answer, Feasibility::kUnknown);
    if (answer == Feasibility::kFeasible) return machines;
  }
  ADD_FAILURE() << "one machine per job must always fit (sizes <= target)";
  return static_cast<int>(jobs.size());
}

TEST(DpCrossCheck, AgreesWithPackingOnFixedShapes) {
  const struct {
    std::vector<Time> sizes;
    std::vector<int> counts;
    Time target;
  } cases[] = {
      {{6, 11}, {2, 3}, 30},
      {{9, 13, 17}, {3, 2, 2}, 40},
      {{20}, {5}, 30},
      {{10, 15}, {6, 4}, 30},
      {{7, 8, 9, 10}, {2, 1, 2, 1}, 31},
      {{25, 26}, {3, 3}, 52},
  };
  for (const auto& test_case : cases) {
    const RoundedInstance rounded =
        make_rounded(test_case.sizes, test_case.counts, test_case.target);
    const StateSpace space(test_case.counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_EQ(run.machines_needed,
              min_machines_by_packing(test_case.sizes, test_case.counts,
                                      test_case.target))
        << "T=" << test_case.target;
  }
}

TEST(DpCrossCheck, AgreesWithPackingOnRandomShapes) {
  Xoshiro256StarStar rng(0xC0FFEE);
  for (int round = 0; round < 25; ++round) {
    const Time target = uniform_int(rng, 20, 60);
    const int dims = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      // Long-ish sizes in (target/4, target]: mimics real rounded classes.
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 0, 4)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_EQ(run.machines_needed,
              min_machines_by_packing(sizes, counts, target))
        << "round " << round << " T=" << target;
  }
}

TEST(DpCrossCheck, MachineCountMonotoneInTarget) {
  // Raising T can only reduce OPT(N) for a fixed rounded job set.
  const std::vector<Time> sizes{9, 14};
  const std::vector<int> counts{3, 3};
  std::int32_t previous = INT32_MAX;
  for (Time target = 14; target <= 70; target += 7) {
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);
    const DpRun run = dp_bottom_up(rounded, space, configs);
    EXPECT_LE(run.machines_needed, previous) << "T=" << target;
    previous = run.machines_needed;
  }
}

}  // namespace
}  // namespace pcmax
