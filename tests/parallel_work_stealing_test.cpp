// Functional tests of the work-stealing substrate: the Chase-Lev deque's
// owner/thief contract, the pool's range and task episodes (coverage,
// nesting, cancellation, error propagation, guaranteed steal hand-off, the
// deterministic "pool.steal" fault site), and the WorkStealingExecutor
// adapter. The sanitize-labelled work_stealing_stress_test hammers the same
// machinery under contention; this file pins the functional contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/executor.hpp"
#include "parallel/work_stealing.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace pcmax {
namespace {

TEST(ChaseLevDeque, OwnerPopsLifoThievesStealFifo) {
  ChaseLevDeque deque(4);
  EXPECT_EQ(deque.capacity(), 4u);
  std::uint32_t out = 0;
  EXPECT_FALSE(deque.pop(&out));
  EXPECT_FALSE(deque.steal(&out));
  EXPECT_TRUE(deque.push(1));
  EXPECT_TRUE(deque.push(2));
  EXPECT_TRUE(deque.push(3));
  EXPECT_TRUE(deque.pop(&out));
  EXPECT_EQ(out, 3u);  // owner: most recent first
  EXPECT_TRUE(deque.steal(&out));
  EXPECT_EQ(out, 1u);  // thief: oldest first
  EXPECT_TRUE(deque.pop(&out));
  EXPECT_EQ(out, 2u);
  EXPECT_FALSE(deque.pop(&out));
  EXPECT_FALSE(deque.steal(&out));
}

TEST(ChaseLevDeque, CapacityRoundsUpAndPushBounds) {
  ChaseLevDeque deque(5);
  EXPECT_EQ(deque.capacity(), 8u);
  for (std::uint32_t v = 0; v < 8; ++v) EXPECT_TRUE(deque.push(v));
  EXPECT_FALSE(deque.push(99)) << "full deque must refuse the push";
  deque.reset(1);
  EXPECT_EQ(deque.capacity(), 1u);
  std::uint32_t out = 0;
  EXPECT_FALSE(deque.pop(&out)) << "reset must empty the deque";
  EXPECT_TRUE(deque.push(7));
  EXPECT_TRUE(deque.pop(&out));
  EXPECT_EQ(out, 7u);
}

TEST(WorkStealingPool, RangeCoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    WorkStealingPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{64}, std::size_t{1000}}) {
      for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                      std::size_t{7}}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for_1d(
            n,
            [&](std::size_t begin, std::size_t end, unsigned worker) {
              ASSERT_LT(worker, threads);
              ASSERT_LE(begin, end);
              ASSERT_LE(end, n);
              for (std::size_t i = begin; i < end; ++i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
              }
            },
            chunk);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "threads " << threads << " n " << n << " chunk " << chunk
              << " index " << i;
        }
      }
    }
  }
}

TEST(WorkStealingPool, UnbalancedRangeStillCoversEverything) {
  // The first shard gets all the heavy items: thieves must drain the rest.
  WorkStealingPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_1d(
      kN,
      [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t i = begin; i < end; ++i) {
          if (i < 8) {
            // Busy work instead of sleep: keeps the imbalance real under
            // a single hardware thread too.
            volatile std::uint64_t sink = 0;
            for (std::uint64_t k = 0; k < 20000; ++k) sink = sink + k;
          }
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*chunk=*/1);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealingPool, NestedParallelForRunsInline) {
  WorkStealingPool pool(2);
  std::atomic<std::uint64_t> inner_total{0};
  pool.parallel_for_1d(4, [&](std::size_t begin, std::size_t end,
                              unsigned outer_worker) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested call from a worker body must execute inline on this worker
      // (a blocking episode would self-deadlock on the episode lock).
      pool.parallel_for_1d(10, [&](std::size_t ib, std::size_t ie,
                                   unsigned inner_worker) {
        EXPECT_EQ(inner_worker, outer_worker);
        inner_total.fetch_add(ie - ib, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40u);

  // Nested into a *different* pool: still inline, reported as worker 0.
  WorkStealingPool other(2);
  pool.parallel_for_1d(1, [&](std::size_t, std::size_t, unsigned) {
    other.parallel_for_1d(3, [&](std::size_t ib, std::size_t ie,
                                 unsigned inner_worker) {
      EXPECT_EQ(inner_worker, 0u);
      inner_total.fetch_add(ie - ib, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 43u);
}

TEST(WorkStealingPool, RangeBodyExceptionPropagatesAndPoolSurvives) {
  WorkStealingPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_1d(
          100,
          [&](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t i = begin; i < end; ++i) {
              if (i == 57) throw ResourceLimitError("boom at 57");
            }
          },
          /*chunk=*/1),
      ResourceLimitError);
  // The pool must be reusable after an aborted episode.
  std::atomic<int> count{0};
  pool.parallel_for_1d(32, [&](std::size_t begin, std::size_t end, unsigned) {
    count.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(WorkStealingPool, RangeCancellationIsAllOrNothing) {
  WorkStealingPool pool(2);
  const CancellationToken token = CancellationToken::make();
  token.request_cancel();
  EXPECT_THROW(pool.parallel_for_1d(
                   1000, [](std::size_t, std::size_t, unsigned) {},
                   /*chunk=*/1, token),
               CancelledError);
}

TEST(WorkStealingPool, TwoDTilingCoversGridWithClippedEdges) {
  WorkStealingPool pool(4);
  constexpr std::size_t kRows = 23;
  constexpr std::size_t kCols = 17;
  std::vector<std::atomic<int>> cells(kRows * kCols);
  pool.parallel_for_2d(
      kRows, kCols, 5, 4,
      [&](std::size_t rb, std::size_t re, std::size_t cb, std::size_t ce,
          unsigned worker) {
        ASSERT_LT(worker, 4u);
        ASSERT_EQ(rb % 5, 0u);
        ASSERT_EQ(cb % 4, 0u);
        ASSERT_LE(re, kRows);
        ASSERT_LE(ce, kCols);
        ASSERT_LE(re - rb, 5u);
        ASSERT_LE(ce - cb, 4u);
        for (std::size_t r = rb; r < re; ++r) {
          for (std::size_t c = cb; c < ce; ++c) {
            cells[r * kCols + c].fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_EQ(cells[i].load(), 1) << "cell " << i;
  }
  // Degenerate shapes.
  pool.parallel_for_2d(0, 10, 2, 2,
                       [](std::size_t, std::size_t, std::size_t, std::size_t,
                          unsigned) { FAIL() << "empty grid ran a tile"; });
  EXPECT_THROW(pool.parallel_for_2d(4, 4, 0, 2,
                                    [](std::size_t, std::size_t, std::size_t,
                                       std::size_t, unsigned) {}),
               InvalidArgumentError);
}

TEST(WorkStealingPool, TaskGraphRunsEveryTaskOnce) {
  WorkStealingPool pool(4);
  // Fan-out: root 0 spawns 1..kTasks-1.
  constexpr std::uint32_t kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  const std::uint32_t roots[] = {0};
  pool.run_tasks(roots, kTasks,
                 [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                   ASSERT_LT(ctx.worker(), 4u);
                   ran[task].fetch_add(1, std::memory_order_relaxed);
                   if (task == 0) {
                     for (std::uint32_t t = 1; t < kTasks; ++t) ctx.spawn(t);
                   }
                 });
  for (std::uint32_t t = 0; t < kTasks; ++t) ASSERT_EQ(ran[t].load(), 1) << t;

  // Chain: task i spawns i+1; exercises repeated push/pop hand-over-hand.
  std::vector<std::atomic<int>> chain(kTasks);
  pool.run_tasks(roots, kTasks,
                 [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                   chain[task].fetch_add(1, std::memory_order_relaxed);
                   if (task + 1 < kTasks) ctx.spawn(task + 1);
                 });
  for (std::uint32_t t = 0; t < kTasks; ++t) ASSERT_EQ(chain[t].load(), 1) << t;
}

TEST(WorkStealingPool, TaskGraphDiamondRespectsDependencyCounters) {
  // A mini counter-driven DAG (the DP's protocol in miniature):
  //   0 -> {1, 2} -> 3; 3 waits on both via an atomic counter.
  WorkStealingPool pool(4);
  std::atomic<std::uint32_t> join_deps{2};
  std::atomic<bool> done1{false};
  std::atomic<bool> done2{false};
  const std::uint32_t roots[] = {0};
  pool.run_tasks(roots, 4,
                 [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                   switch (task) {
                     case 0:
                       ctx.spawn(1);
                       ctx.spawn(2);
                       break;
                     case 1:
                     case 2:
                       (task == 1 ? done1 : done2).store(true);
                       if (join_deps.fetch_sub(1, std::memory_order_acq_rel) ==
                           1) {
                         ctx.spawn(3);
                       }
                       break;
                     case 3:
                       // Both sides of the diamond must be complete.
                       EXPECT_TRUE(done1.load());
                       EXPECT_TRUE(done2.load());
                       break;
                   }
                 });
  EXPECT_EQ(join_deps.load(), 0u);
}

TEST(WorkStealingPool, StealHandsOffTaskWhileOwnerIsBusy) {
  // The root (on worker 0) spawns one child into its own deque and then
  // busy-waits for it: the only way the episode can finish promptly is a
  // peer STEALING the child — a guaranteed steal hand-off.
  WorkStealingPool pool(2);
  obs::Metrics metrics(2);
  std::atomic<bool> child_done{false};
  std::atomic<unsigned> root_worker{99};
  std::atomic<unsigned> child_worker{99};
  {
    const obs::MetricsScope scope(metrics);
    const std::uint32_t roots[] = {0};
    pool.run_tasks(roots, 2,
                   [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
                     if (task == 1) {
                       child_worker.store(ctx.worker());
                       child_done.store(true, std::memory_order_release);
                       return;
                     }
                     root_worker.store(ctx.worker());
                     ctx.spawn(1);
                     const auto deadline = std::chrono::steady_clock::now() +
                                           std::chrono::seconds(30);
                     while (!child_done.load(std::memory_order_acquire) &&
                            std::chrono::steady_clock::now() < deadline) {
                       std::this_thread::yield();
                     }
                   });
  }
  EXPECT_TRUE(child_done.load());
  // Either worker may have claimed the root off the shared cursor; the child
  // sat in the root's own deque, so it can only have run on the OTHER worker.
  EXPECT_NE(child_worker.load(), 99u);
  EXPECT_NE(child_worker.load(), root_worker.load())
      << "the child must have been stolen";
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_GE(metrics.counter_total(obs::Counter::kPoolSteals), 1u);
  }
}

TEST(WorkStealingPool, StealFaultSiteAbortsEpisodeDeterministically) {
  // Same guaranteed-steal construction with the "pool.steal" site armed to
  // throw on its first hit: the first steal (which MUST happen for the child
  // to run while the root spins) injects the fault, and the episode aborts
  // all-or-nothing with the typed error.
  WorkStealingPool pool(2);
  FaultInjector injector("pool.steal", 1, FaultInjector::Action::kThrow);
  std::atomic<bool> child_ran{false};
  {
    const FaultScope scope(injector);
    const std::uint32_t roots[] = {0};
    EXPECT_THROW(
        pool.run_tasks(roots, 2,
                       [&](std::uint32_t task,
                           WorkStealingPool::TaskContext& ctx) {
                         if (task == 1) {
                           child_ran.store(true);
                           return;
                         }
                         ctx.spawn(1);
                         const auto deadline =
                             std::chrono::steady_clock::now() +
                             std::chrono::seconds(30);
                         while (!injector.fired() &&
                                std::chrono::steady_clock::now() < deadline) {
                           std::this_thread::yield();
                         }
                       }),
        ResourceLimitError);
  }
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(child_ran.load()) << "the faulted steal must drop the task";
  // The pool survives the aborted episode.
  std::atomic<int> count{0};
  const std::uint32_t roots[] = {0};
  pool.run_tasks(roots, 1,
                 [&](std::uint32_t, WorkStealingPool::TaskContext&) {
                   count.fetch_add(1);
                 });
  EXPECT_EQ(count.load(), 1);
}

TEST(WorkStealingPool, TaskCancellationStopsTheGraph) {
  WorkStealingPool pool(2);
  const CancellationToken token = CancellationToken::make();
  std::atomic<int> started{0};
  const std::uint32_t roots[] = {0};
  EXPECT_THROW(
      pool.run_tasks(
          roots, 1u << 20,
          [&](std::uint32_t task, WorkStealingPool::TaskContext& ctx) {
            started.fetch_add(1, std::memory_order_relaxed);
            if (task == 64) token.request_cancel();
            // Unbounded chain: only cancellation ends the episode.
            ctx.spawn(task + 1);
          },
          token),
      CancelledError);
  EXPECT_GE(started.load(), 64);
}

TEST(WorkStealingPool, TaskGraphValidation) {
  WorkStealingPool pool(2);
  const std::uint32_t roots[] = {5};
  EXPECT_THROW(pool.run_tasks(roots, 4,
                              [](std::uint32_t, WorkStealingPool::TaskContext&) {
                              }),
               InvalidArgumentError)
      << "root id must be below the task bound";
  EXPECT_THROW(
      pool.run_tasks(roots, 0,
                     [](std::uint32_t, WorkStealingPool::TaskContext&) {}),
      InvalidArgumentError);
  // Empty roots: a no-op, not an error.
  pool.run_tasks({}, 4, [](std::uint32_t, WorkStealingPool::TaskContext&) {
    FAIL() << "no roots, no tasks";
  });
  // Spawning past the bound trips the id check inside the episode.
  const std::uint32_t one_root[] = {0};
  EXPECT_THROW(pool.run_tasks(one_root, 1,
                              [](std::uint32_t,
                                 WorkStealingPool::TaskContext& ctx) {
                                ctx.spawn(1);
                              }),
               InternalError);
  // run_tasks cannot be nested inside a worker body (the episode lock is
  // held); the rejection propagates as the episode's error.
  EXPECT_THROW(
      pool.parallel_for_1d(1,
                           [&](std::size_t, std::size_t, unsigned) {
                             pool.run_tasks(
                                 one_root, 1,
                                 [](std::uint32_t,
                                    WorkStealingPool::TaskContext&) {});
                           }),
      InvalidArgumentError);
}

TEST(WorkStealingExecutor, AdaptsThePoolBehindTheExecutorInterface) {
  WorkStealingExecutor executor(3);
  // The default cancel argument lives on the base declaration.
  Executor& base = executor;
  EXPECT_EQ(executor.concurrency(), 3u);
  EXPECT_EQ(executor.name(), "workstealing");
  for (const LoopSchedule schedule :
       {LoopSchedule::kStatic, LoopSchedule::kRoundRobin,
        LoopSchedule::kDynamic}) {
    std::vector<std::atomic<int>> hits(257);
    base.parallel_for_ranges(
        hits.size(),
        [&](std::size_t begin, std::size_t end, unsigned worker) {
          ASSERT_LT(worker, 3u);
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        schedule, /*chunk=*/4);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << loop_schedule_name(schedule) << " index " << i;
    }
  }

  // The factory resolves both spellings and rejects unknown backends.
  const std::unique_ptr<Executor> made = make_executor("workstealing", 2);
  EXPECT_EQ(made->name(), "workstealing");
  const std::unique_ptr<Executor> dashed = make_executor("work-stealing", 2);
  EXPECT_EQ(dashed->name(), "workstealing");
  EXPECT_THROW(make_executor("bogus-backend", 2), InvalidArgumentError);
}

}  // namespace
}  // namespace pcmax
