#include "mip/pcmax_ip.hpp"

#include <gtest/gtest.h>

#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "exact/exact.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

TEST(MilpSolver, SolvesHandVerifiedInstances) {
  {
    const Instance instance(2, {3, 3, 2, 2, 2});
    const SolverResult result = PcmaxIpSolver().solve(instance);
    result.schedule.validate(instance);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.makespan, 6);
  }
  {
    const Instance instance(3, {1, 1, 1, 1, 1, 3});
    const SolverResult result = PcmaxIpSolver().solve(instance);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.makespan, 3);
  }
}

TEST(MilpSolver, MatchesBruteForceOnSmallRandomInstances) {
  for (const InstanceFamily family :
       {InstanceFamily::kUniform1To10, InstanceFamily::kUniform1To100,
        InstanceFamily::kUniformMTo2M1}) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 8, 123, index);
      const SolverResult milp = PcmaxIpSolver().solve(instance);
      milp.schedule.validate(instance);
      EXPECT_TRUE(milp.proven_optimal) << family_name(family) << " #" << index;
      EXPECT_EQ(milp.makespan, brute_force_optimum(instance))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(MilpSolver, AgreesWithTheCombinatorialExactSolver) {
  for (std::uint64_t index = 0; index < 3; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 2, 9, 321, index);
    const SolverResult milp = PcmaxIpSolver().solve(instance);
    const SolverResult exact = ExactSolver().solve(instance);
    EXPECT_EQ(milp.makespan, exact.makespan) << "#" << index;
  }
}

TEST(MilpSolver, ReportsNodeAndLpCounts) {
  // LPT is suboptimal here (7 vs 6), so the search must actually branch.
  const Instance instance(2, {3, 3, 2, 2, 2});
  const SolverResult result = PcmaxIpSolver().solve(instance);
  EXPECT_GE(result.stats.at("nodes"), 1.0);
  EXPECT_GE(result.stats.at("lp_solves"), 1.0);
}

TEST(MilpSolver, BudgetExhaustionClearsTheOptimalityFlag) {
  MipOptions options;
  options.max_nodes = 1;
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 10, 5, 0);
  const SolverResult result = PcmaxIpSolver(options).solve(instance);
  result.schedule.validate(instance);  // LPT incumbent is still returned
  EXPECT_FALSE(result.proven_optimal);
}

TEST(MilpSolver, TrivialCasesTerminateImmediately) {
  // LPT already matches the lower bound: no branching required.
  const Instance instance(2, {5, 5});
  const SolverResult result = PcmaxIpSolver().solve(instance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.makespan, 5);
}

TEST(MilpSolver, RejectsMoreThan64Machines) {
  const Instance instance(65, std::vector<Time>(65, 1));
  try {
    (void)PcmaxIpSolver().solve(instance);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_NE(std::string(e.what()).find("demand 65 exceeds limit 64"),
              std::string::npos)
        << e.what();
  }
}

TEST(MilpSolver, NameIsMILP) {
  EXPECT_EQ(PcmaxIpSolver().name(), "MILP");
}

}  // namespace
}  // namespace pcmax
