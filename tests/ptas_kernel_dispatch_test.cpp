// The kernel-dispatch contract behind --dp-kernel: the runtime selector
// never picks an ISA the host (or the build) does not have, forcing any
// kernel reproduces the reference DP byte for byte, and the degradation
// accounting (dp.simd_blocks / dp.scalar_fallbacks) matches the documented
// rules. These tests run on every host: the vector-specific assertions gate
// on dp_kernel_supported(), so a non-AVX machine (or a PCMAX_DISABLE_SIMD
// build) still exercises the full dispatch surface through the degradation
// chain.
#include <gtest/gtest.h>

#include <vector>

#include "algo/ptas/config_enum.hpp"
#include "algo/ptas/dp_sequential.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

constexpr std::size_t kBig = std::size_t{1} << 40;

constexpr DpKernel kAllKernels[] = {
    DpKernel::kGlobalConfigs, DpKernel::kPerEntryEnum, DpKernel::kScalar,
    DpKernel::kSwar,          DpKernel::kAvx2,         DpKernel::kAvx512};

RoundedInstance make_rounded(const std::vector<Time>& sizes,
                             const std::vector<int>& counts, Time target) {
  RoundedInstance rounded;
  rounded.params = RoundingParams::make(target, 4);
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    rounded.class_index.push_back(static_cast<int>(d) + 1);
    rounded.class_size.push_back(sizes[d]);
    rounded.class_count.push_back(counts[d]);
    rounded.class_jobs.emplace_back();
    rounded.total_long_jobs += counts[d];
  }
  return rounded;
}

void expect_identical_tables(const DpRun& reference, const DpRun& run,
                             const std::string& what) {
  ASSERT_EQ(run.table.size(), reference.table.size()) << what;
  EXPECT_EQ(run.machines_needed, reference.machines_needed) << what;
  for (std::size_t i = 0; i < reference.table.size(); ++i) {
    ASSERT_EQ(run.table.value(i), reference.table.value(i))
        << what << " value at entry " << i;
    ASSERT_EQ(run.table.choice(i), reference.table.choice(i))
        << what << " choice at entry " << i;
  }
}

TEST(KernelDispatch, NamesRoundTrip) {
  for (const DpKernel kernel : kAllKernels) {
    EXPECT_EQ(dp_kernel_from_name(dp_kernel_name(kernel)), kernel);
  }
  EXPECT_EQ(dp_kernel_from_name("auto"), DpKernel::kGlobalConfigs);
  EXPECT_THROW((void)dp_kernel_from_name("sse2"), InvalidArgumentError);
  EXPECT_THROW((void)dp_kernel_from_name(""), InvalidArgumentError);
}

TEST(KernelDispatch, SupportImpliesCompiled) {
  for (const DpKernel kernel : kAllKernels) {
    if (dp_kernel_supported(kernel)) {
      EXPECT_TRUE(dp_kernel_compiled(kernel)) << dp_kernel_name(kernel);
    }
  }
  // The portable kernels are unconditionally available.
  EXPECT_TRUE(dp_kernel_supported(DpKernel::kScalar));
  EXPECT_TRUE(dp_kernel_supported(DpKernel::kSwar));
  EXPECT_TRUE(dp_kernel_supported(DpKernel::kPerEntryEnum));
}

TEST(KernelDispatch, SelectBestIsAlwaysSupported) {
  const DpKernel best = select_best_kernel();
  EXPECT_TRUE(dp_kernel_supported(best)) << dp_kernel_name(best);
  // It resolves to a concrete scan kernel, never a meta value.
  EXPECT_TRUE(best == DpKernel::kSwar || best == DpKernel::kAvx2 ||
              best == DpKernel::kAvx512)
      << dp_kernel_name(best);
}

TEST(KernelDispatch, ResolveNeverYieldsAnUnsupportedKernel) {
  for (const DpKernel kernel : kAllKernels) {
    const DpKernel resolved = resolve_dp_kernel(kernel);
    EXPECT_TRUE(dp_kernel_supported(resolved))
        << dp_kernel_name(kernel) << " -> " << dp_kernel_name(resolved);
  }
  // Identity for the always-available kernels; the meta value resolves to
  // the host's best.
  EXPECT_EQ(resolve_dp_kernel(DpKernel::kGlobalConfigs), select_best_kernel());
  EXPECT_EQ(resolve_dp_kernel(DpKernel::kPerEntryEnum),
            DpKernel::kPerEntryEnum);
  EXPECT_EQ(resolve_dp_kernel(DpKernel::kScalar), DpKernel::kScalar);
  EXPECT_EQ(resolve_dp_kernel(DpKernel::kSwar), DpKernel::kSwar);
  // The vector kernels degrade down the chain when unsupported.
  if (dp_kernel_supported(DpKernel::kAvx2)) {
    EXPECT_EQ(resolve_dp_kernel(DpKernel::kAvx2), DpKernel::kAvx2);
  } else {
    EXPECT_EQ(resolve_dp_kernel(DpKernel::kAvx2), DpKernel::kSwar);
  }
  if (dp_kernel_supported(DpKernel::kAvx512)) {
    EXPECT_EQ(resolve_dp_kernel(DpKernel::kAvx512), DpKernel::kAvx512);
  } else {
    EXPECT_NE(resolve_dp_kernel(DpKernel::kAvx512), DpKernel::kAvx512);
  }
}

TEST(KernelDispatch, ForcedKernelsAreByteIdenticalOnRandomShapes) {
  Xoshiro256StarStar rng(0x51CCED);
  for (int round = 0; round < 10; ++round) {
    const Time target = uniform_int(rng, 25, 70);
    const int dims = static_cast<int>(uniform_int(rng, 1, 4));
    std::vector<Time> sizes;
    std::vector<int> counts;
    for (int d = 0; d < dims; ++d) {
      sizes.push_back(uniform_int(rng, target / 4 + 1, target));
      counts.push_back(static_cast<int>(uniform_int(rng, 1, 5)));
    }
    const RoundedInstance rounded = make_rounded(sizes, counts, target);
    const StateSpace space(counts, kBig);
    const ConfigSet configs = enumerate_configs(rounded, space, kBig);

    DpOptions reference_options;
    reference_options.kernel = DpKernel::kScalar;
    const DpRun reference =
        dp_bottom_up(rounded, space, configs, reference_options);

    for (const DpKernel kernel : kAllKernels) {
      DpOptions options;
      options.kernel = kernel;
      const DpRun run = dp_bottom_up(rounded, space, configs, options);
      const std::string what = std::string(dp_kernel_name(kernel)) +
                               " round " + std::to_string(round);
      expect_identical_tables(reference, run, what);
      EXPECT_EQ(run.stats.kernel, resolve_dp_kernel(kernel)) << what;
      // Scan accounting is kernel-independent: every scan kernel inspects
      // the same level prefix, so scans + pruned is conserved exactly.
      if (kernel != DpKernel::kPerEntryEnum) {
        EXPECT_EQ(run.stats.config_scans, reference.stats.config_scans) << what;
        EXPECT_EQ(run.stats.configs_pruned, reference.stats.configs_pruned)
            << what;
      }
      EXPECT_EQ(run.stats.entries_computed, reference.stats.entries_computed)
          << what;
    }
  }
}

TEST(KernelDispatch, SwarBoundaryDigitsMatchScalar) {
  // counts = 127 is the widest packable digit (the high bit must stay
  // spare); the SWAR/vector fits test must agree with the scalar comparison
  // right at that boundary.
  const RoundedInstance rounded = make_rounded({2}, {127}, 254);
  const std::vector<int> counts{127};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ASSERT_TRUE(configs.packable);

  DpOptions scalar_options;
  scalar_options.kernel = DpKernel::kScalar;
  const DpRun reference = dp_bottom_up(rounded, space, configs, scalar_options);
  for (const DpKernel kernel :
       {DpKernel::kSwar, DpKernel::kAvx2, DpKernel::kAvx512}) {
    DpOptions options;
    options.kernel = kernel;
    const DpRun run = dp_bottom_up(rounded, space, configs, options);
    expect_identical_tables(reference, run, dp_kernel_name(kernel));
  }
}

TEST(KernelDispatch, UnpackableSetDegradesToScalarWithAccounting) {
  // counts > 127 cannot be byte-packed: every kernel must still produce the
  // scalar table, and a *forced vector* kernel records the degradation.
  const RoundedInstance rounded = make_rounded({2}, {200}, 400);
  const std::vector<int> counts{200};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ASSERT_FALSE(configs.packable);

  DpOptions scalar_options;
  scalar_options.kernel = DpKernel::kScalar;
  const DpRun reference = dp_bottom_up(rounded, space, configs, scalar_options);
  EXPECT_EQ(reference.stats.scalar_fallbacks, 0u);
  EXPECT_EQ(reference.stats.simd_blocks, 0u);

  DpOptions swar_options;
  swar_options.kernel = DpKernel::kSwar;
  const DpRun swar = dp_bottom_up(rounded, space, configs, swar_options);
  expect_identical_tables(reference, swar, "swar");
  // SWAR was *asked* to be scalar-equivalent here; only vector kernels
  // count their degradation.
  EXPECT_EQ(swar.stats.scalar_fallbacks, 0u);

  for (const DpKernel kernel : {DpKernel::kAvx2, DpKernel::kAvx512}) {
    if (resolve_dp_kernel(kernel) != kernel) continue;  // not supported here
    DpOptions options;
    options.kernel = kernel;
    const DpRun run = dp_bottom_up(rounded, space, configs, options);
    expect_identical_tables(reference, run, dp_kernel_name(kernel));
    EXPECT_GT(run.stats.scalar_fallbacks, 0u) << dp_kernel_name(kernel);
    EXPECT_EQ(run.stats.simd_blocks, 0u) << dp_kernel_name(kernel);
  }
}

TEST(KernelDispatch, VectorKernelsCountSimdBlocks) {
  // A packable shape with wide level prefixes: a supported vector kernel
  // must actually vectorise (simd_blocks > 0), and the portable kernels
  // must not.
  const RoundedInstance rounded = make_rounded({5, 7, 9}, {6, 6, 6}, 45);
  const std::vector<int> counts{6, 6, 6};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  ASSERT_TRUE(configs.packable);
  ASSERT_GE(configs.count(), 8u);

  for (const DpKernel kernel : {DpKernel::kScalar, DpKernel::kSwar}) {
    DpOptions options;
    options.kernel = kernel;
    const DpRun run = dp_bottom_up(rounded, space, configs, options);
    EXPECT_EQ(run.stats.simd_blocks, 0u) << dp_kernel_name(kernel);
    EXPECT_EQ(run.stats.scalar_fallbacks, 0u) << dp_kernel_name(kernel);
  }
  for (const DpKernel kernel : {DpKernel::kAvx2, DpKernel::kAvx512}) {
    if (resolve_dp_kernel(kernel) != kernel) continue;  // not supported here
    DpOptions options;
    options.kernel = kernel;
    const DpRun run = dp_bottom_up(rounded, space, configs, options);
    EXPECT_GT(run.stats.simd_blocks, 0u) << dp_kernel_name(kernel);
  }
}

TEST(KernelDispatch, PruningOffAlwaysRunsTheScalarScan) {
  // LevelPruning::kOff is the pre-optimisation baseline: it bypasses the
  // packed path entirely (no simd blocks, no fallback accounting) yet still
  // reproduces the reference table.
  const RoundedInstance rounded = make_rounded({6, 11}, {4, 4}, 40);
  const std::vector<int> counts{4, 4};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  const DpRun reference = dp_bottom_up(rounded, space, configs);
  for (const DpKernel kernel : kAllKernels) {
    if (kernel == DpKernel::kPerEntryEnum) continue;  // no pruning knob
    DpOptions options;
    options.kernel = kernel;
    options.pruning = LevelPruning::kOff;
    const DpRun run = dp_bottom_up(rounded, space, configs, options);
    expect_identical_tables(reference, run, dp_kernel_name(kernel));
    EXPECT_EQ(run.stats.simd_blocks, 0u) << dp_kernel_name(kernel);
    EXPECT_EQ(run.stats.scalar_fallbacks, 0u) << dp_kernel_name(kernel);
    EXPECT_EQ(run.stats.configs_pruned, 0u) << dp_kernel_name(kernel);
  }
}

TEST(KernelDispatch, HugePageTablesChangeNothing) {
  const RoundedInstance rounded = make_rounded({6, 11}, {4, 4}, 40);
  const std::vector<int> counts{4, 4};
  const StateSpace space(counts, kBig);
  const ConfigSet configs = enumerate_configs(rounded, space, kBig);
  const DpRun reference = dp_bottom_up(rounded, space, configs);
  DpOptions options;
  options.table_alloc = TableAlloc::kHugePage;
  const DpRun run = dp_bottom_up(rounded, space, configs, options);
  expect_identical_tables(reference, run, "huge-page tables");
}

}  // namespace
}  // namespace pcmax
