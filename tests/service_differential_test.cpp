// Differential tests of the batch service against fresh solves.
//
// The service contract: a response is a pure function of the PROBLEM
// (machines, job multiset, epsilon) — it solves the canonical twin and lifts
// the schedule through the request's sort permutation. So the reference a
// response must match byte-for-byte is "canonicalize, solve fresh with the
// same resilient ladder, lift" — for misses AND hits alike, in any job
// order, at any worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/instance_gen.hpp"
#include "core/resilient_solver.hpp"
#include "service/solve_service.hpp"

namespace pcmax {
namespace {

struct Reference {
  Time makespan;
  Schedule schedule;
  std::string algorithm;
};

/// What the service must reproduce: fresh single-threaded resilient solve of
/// the canonical twin, lifted back through the request's permutation.
Reference reference_solve(const Instance& instance,
                          const ServiceOptions& options) {
  const CanonicalInstance canonical(instance);
  ResilientOptions resilient;
  resilient.ptas.epsilon = options.epsilon;
  resilient.multifit_iterations = options.multifit_iterations;
  resilient.local_search_rounds = options.local_search_rounds;
  SolverResult result = ResilientSolver(resilient).solve(canonical.instance());
  Schedule lifted =
      canonical.lift(result.schedule.assignment(canonical.instance()));
  return Reference{result.makespan, std::move(lifted),
                   result.notes.at("algorithm_used")};
}

Instance permuted(const Instance& instance, std::uint64_t seed) {
  std::vector<Time> times(instance.times().begin(), instance.times().end());
  std::mt19937_64 rng(seed);
  std::shuffle(times.begin(), times.end(), rng);
  return Instance(instance.machines(), std::move(times));
}

/// Generous admission so nothing in these tests ever degrades.
ServiceOptions lenient_options(unsigned workers) {
  ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = 256;
  options.cache_capacity = 256;
  options.epsilon = 0.3;
  return options;
}

TEST(ServiceDifferential, MissesMatchFreshCanonicalSolvesByteForByte) {
  const ServiceOptions options = lenient_options(1);
  SolveService service(options);
  for (const InstanceFamily family : all_families()) {
    for (const auto& [m, n] : {std::pair{3, 12}, std::pair{5, 24}}) {
      const Instance instance = generate_instance(family, m, n, 17, 0);
      const SolveResponse response =
          service.submit(SolveRequest{instance}).get();
      const Reference expected = reference_solve(instance, options);
      EXPECT_FALSE(response.cache_hit) << family_name(family);
      EXPECT_FALSE(response.degraded) << response.degradation_reason;
      EXPECT_EQ(response.makespan, expected.makespan) << family_name(family);
      EXPECT_EQ(response.schedule, expected.schedule) << family_name(family);
      EXPECT_EQ(response.algorithm, expected.algorithm);
      response.schedule.validate(instance);
    }
  }
}

TEST(ServiceDifferential, HitsAreIndistinguishableFromMisses) {
  const ServiceOptions options = lenient_options(1);
  SolveService service(options);
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 23, 0);
  const Reference expected = reference_solve(instance, options);
  const SolveResponse first = service.submit(SolveRequest{instance}).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.makespan, expected.makespan);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance twin = permuted(instance, seed);
    const SolveResponse response = service.submit(SolveRequest{twin}).get();
    EXPECT_TRUE(response.cache_hit) << "seed " << seed;
    EXPECT_EQ(response.fingerprint, first.fingerprint);
    EXPECT_EQ(response.makespan, expected.makespan);
    EXPECT_EQ(response.algorithm, expected.algorithm);
    response.schedule.validate(twin);
    // The twin's schedule must also be the reference schedule of the twin
    // itself: canonical solving makes hit/miss content identical.
    const Reference twin_expected = reference_solve(twin, options);
    EXPECT_EQ(response.makespan, twin_expected.makespan);
    EXPECT_EQ(response.schedule, twin_expected.schedule);
  }
  EXPECT_EQ(service.stats().cache.hits, 4u);
}

TEST(ServiceDifferential, ResponsesAreWorkerCountInvariant) {
  // Concurrency changes who computes, never what: a 4-worker service must
  // produce the same content as a 1-worker service for the same batch.
  std::vector<Instance> instances;
  for (std::uint64_t index = 0; index < 6; ++index) {
    instances.push_back(generate_instance(InstanceFamily::kUniform1To10, 3, 15,
                                          31, index));
    instances.push_back(permuted(instances.back(), index + 100));
  }
  std::vector<std::vector<SolveResponse>> arms;
  for (const unsigned workers : {1u, 4u}) {
    SolveService service(lenient_options(workers));
    std::vector<SolveRequest> batch;
    for (const Instance& instance : instances) {
      batch.push_back(SolveRequest{instance});
    }
    arms.push_back(service.solve_batch(std::move(batch)));
  }
  ASSERT_EQ(arms[0].size(), arms[1].size());
  for (std::size_t i = 0; i < arms[0].size(); ++i) {
    EXPECT_EQ(arms[0][i].makespan, arms[1][i].makespan) << i;
    EXPECT_EQ(arms[0][i].schedule, arms[1][i].schedule) << i;
    EXPECT_EQ(arms[0][i].fingerprint, arms[1][i].fingerprint) << i;
    EXPECT_FALSE(arms[1][i].degraded) << arms[1][i].degradation_reason;
  }
}

TEST(ServiceDifferential, FingerprintsArePermutationInvariantAndCollisionFree) {
  const ServiceOptions options = lenient_options(2);
  SolveService service(options);
  std::vector<SolveRequest> batch;
  std::vector<Instance> submitted;
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 10, 47, index);
      submitted.push_back(instance);
      submitted.push_back(permuted(instance, index + 1));
    }
  }
  for (const Instance& instance : submitted) {
    batch.push_back(SolveRequest{instance});
  }
  const std::vector<SolveResponse> responses =
      service.solve_batch(std::move(batch));
  // One fingerprint <=> one canonical problem; equal fingerprints must
  // report identical makespans (hit or miss, either order).
  std::map<std::string, std::pair<Instance, Time>> by_key;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const CanonicalInstance canonical(submitted[i]);
    EXPECT_EQ(responses[i].fingerprint,
              request_fingerprint(canonical, options.epsilon));
    const auto [it, inserted] = by_key.emplace(
        responses[i].fingerprint.to_hex(),
        std::pair{canonical.instance(), responses[i].makespan});
    if (!inserted) {
      EXPECT_EQ(it->second.first, canonical.instance()) << "collision at " << i;
      EXPECT_EQ(it->second.second, responses[i].makespan) << i;
    }
  }
  // Every pair (original, twin) collapsed to one key.
  EXPECT_EQ(by_key.size(), submitted.size() / 2);
}

TEST(ServiceDifferential, BatchPreservesRequestOrder) {
  SolveService service(lenient_options(3));
  std::vector<SolveRequest> batch;
  std::vector<int> expected_jobs;
  for (int n = 5; n < 17; ++n) {
    batch.push_back(SolveRequest{generate_instance(
        InstanceFamily::kUniform1To10, 2, n, 53, static_cast<std::uint64_t>(n))});
    expected_jobs.push_back(n);
  }
  const std::vector<SolveResponse> responses =
      service.solve_batch(std::move(batch));
  ASSERT_EQ(responses.size(), expected_jobs.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].jobs, expected_jobs[i]) << i;
  }
}

}  // namespace
}  // namespace pcmax
