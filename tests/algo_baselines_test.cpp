#include <gtest/gtest.h>

#include "algo/list_scheduling.hpp"
#include "algo/lpt.hpp"
#include "algo/multifit.hpp"
#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

// ---------------------------------------------------------------- LS ------

TEST(ListScheduling, AssignsToLeastLoadedMachineInOrder) {
  // Jobs 3,3,2,2,2 on 2 machines in input order:
  // m0: 3, m1: 3, m0: 2 (load 3 vs 3, tie -> lower index), m1: 2, m0: 2.
  const Instance instance(2, {3, 3, 2, 2, 2});
  const SolverResult r = ListSchedulingSolver().solve(instance);
  r.schedule.validate(instance);
  EXPECT_EQ(r.schedule.jobs_on(0), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(r.schedule.jobs_on(1), (std::vector<int>{1, 3}));
  EXPECT_EQ(r.makespan, 7);
}

TEST(ListScheduling, GrahamWorstCaseOrderGivesNearTwiceOptimal) {
  // Classic adversarial order for LS: 2m-1 unit jobs then one job of size m.
  // LS ends at 2m-1 + ... actually: m=3, jobs {1,1,1,1,1,3}: LS spreads the
  // five units (loads 2,2,1) then puts the 3 on the least loaded -> 4.
  // Optimal is 3 (3 alone; units split 3+2). Ratio 4/3 here; with the job
  // sizes below the ratio approaches 2 - 1/m.
  const Instance instance(3, {1, 1, 1, 1, 1, 3});
  const SolverResult ls = ListSchedulingSolver().solve(instance);
  EXPECT_EQ(ls.makespan, 4);
  EXPECT_EQ(brute_force_optimum(instance), 3);
}

TEST(ListScheduling, RespectsTwoApproximationBound) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 10, 2024, index);
      const SolverResult r = ListSchedulingSolver().solve(instance);
      r.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      EXPECT_LE(r.makespan, 2 * opt) << family_name(family) << " #" << index;
      EXPECT_GE(r.makespan, opt);
    }
  }
}

TEST(ListScheduleOnto, RespectsExistingLoads) {
  const Instance instance(2, {10, 1, 1});
  Schedule schedule(2);
  schedule.assign(0, 0);  // machine 0 preloaded with 10
  const std::vector<int> rest{1, 2};
  list_schedule_onto(instance, rest, schedule);
  schedule.validate(instance);
  // Both unit jobs go to machine 1.
  EXPECT_EQ(schedule.load(instance, 1), 2);
  EXPECT_EQ(schedule.makespan(instance), 10);
}

// ---------------------------------------------------------------- LPT -----

TEST(Lpt, SortsByNonIncreasingTimeWithStableTies) {
  const Instance instance(2, {5, 9, 5, 1, 9});
  const std::vector<int> all{0, 1, 2, 3, 4};
  EXPECT_EQ(sort_jobs_lpt(instance, all), (std::vector<int>{1, 4, 0, 2, 3}));
}

TEST(Lpt, SolvesGrahamExampleOptimally) {
  // The LS-adversarial instance above is easy for LPT.
  const Instance instance(3, {1, 1, 1, 1, 1, 3});
  EXPECT_EQ(LptSolver().solve(instance).makespan, 3);
}

TEST(Lpt, KnownAdversarialInstanceShowsTheFourThirdsGap) {
  // Graham's tight example for m=2: jobs {3,3,2,2,2}; LPT gives 7, OPT 6.
  const Instance instance(2, {3, 3, 2, 2, 2});
  EXPECT_EQ(LptSolver().solve(instance).makespan, 7);
  EXPECT_EQ(brute_force_optimum(instance), 6);
}

TEST(Lpt, RespectsGrahamBound) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 4, 11, 55, index);
      const SolverResult r = LptSolver().solve(instance);
      r.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      // makespan <= (4/3 - 1/(3m)) * OPT, checked in integers:
      // 3*m*makespan <= (4m - 1) * OPT.
      EXPECT_LE(3 * 4 * r.makespan, (4 * 4 - 1) * opt)
          << family_name(family) << " #" << index;
    }
  }
}

TEST(Lpt, NeverWorseThanListSchedulingOnSortedAdversaries) {
  for (std::uint64_t index = 0; index < 5; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniformMTo2M1, 5, 11, 7, index);
    EXPECT_LE(LptSolver().solve(instance).makespan,
              2 * brute_force_optimum(instance));
  }
}

// ------------------------------------------------------------- MULTIFIT ---

TEST(FirstFitDecreasing, PacksWhenCapacityIsGenerous) {
  const Instance instance(2, {4, 3, 3, 2});
  Schedule schedule(2);
  EXPECT_TRUE(first_fit_decreasing(instance, 6, &schedule));
  schedule.validate(instance);
  EXPECT_LE(schedule.makespan(instance), 6);
}

TEST(FirstFitDecreasing, FailsWhenCapacityIsTooTight) {
  const Instance instance(2, {4, 3, 3, 2});
  EXPECT_FALSE(first_fit_decreasing(instance, 5, nullptr));
}

TEST(FirstFitDecreasing, NullOutIsAllowed) {
  const Instance instance(2, {1, 1});
  EXPECT_TRUE(first_fit_decreasing(instance, 5, nullptr));
}

TEST(Multifit, FindsOptimalOnEasyInstances) {
  // OPT = 7: {5}, {4,3}, {3,3} — a perfect 6/6/6 split is impossible
  // because nothing pairs with the 5.
  const Instance instance(3, {5, 4, 3, 3, 3});
  const SolverResult r = MultifitSolver().solve(instance);
  r.schedule.validate(instance);
  EXPECT_EQ(r.makespan, 7);
  EXPECT_EQ(brute_force_optimum(instance), 7);
}

TEST(Multifit, RespectsCoffmanBoundOnRandomInstances) {
  for (const InstanceFamily family : all_families()) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Instance instance = generate_instance(family, 3, 10, 77, index);
      const SolverResult r = MultifitSolver().solve(instance);
      r.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      // 13/11 + 2^-k slack, with k = 10 the 2^-k term is < 0.001.
      EXPECT_LE(static_cast<double>(r.makespan),
                (13.0 / 11.0 + 0.001) * static_cast<double>(opt))
          << family_name(family) << " #" << index;
    }
  }
}

TEST(Multifit, MoreIterationsNeverHurt) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 20, 31, 0);
  const Time coarse = MultifitSolver(2).solve(instance).makespan;
  const Time fine = MultifitSolver(12).solve(instance).makespan;
  EXPECT_LE(fine, coarse);
}

TEST(Multifit, RejectsZeroIterations) {
  EXPECT_THROW(MultifitSolver(0), InvalidArgumentError);
}

TEST(Multifit, StatsRecordIterationCount) {
  const Instance instance(2, {5, 5, 5});
  const SolverResult r = MultifitSolver(6).solve(instance);
  EXPECT_DOUBLE_EQ(r.stats.at("iterations"), 6.0);
}

// ------------------------------------------------------------- common -----

TEST(Baselines, NamesAreStable) {
  EXPECT_EQ(ListSchedulingSolver().name(), "LS");
  EXPECT_EQ(LptSolver().name(), "LPT");
  EXPECT_EQ(MultifitSolver().name(), "MULTIFIT");
}

TEST(Baselines, AllProduceValidSchedulesOnSingleMachine) {
  const Instance instance(1, {3, 1, 4, 1, 5});
  for (Time makespan : {ListSchedulingSolver().solve(instance).makespan,
                        LptSolver().solve(instance).makespan,
                        MultifitSolver().solve(instance).makespan}) {
    EXPECT_EQ(makespan, 14);  // single machine: always the total
  }
}

TEST(Baselines, MoreMachinesThanJobs) {
  const Instance instance(10, {7, 3});
  EXPECT_EQ(ListSchedulingSolver().solve(instance).makespan, 7);
  EXPECT_EQ(LptSolver().solve(instance).makespan, 7);
  EXPECT_EQ(MultifitSolver().solve(instance).makespan, 7);
}

}  // namespace
}  // namespace pcmax
