#include "algo/ptas/multisection.hpp"

#include <gtest/gtest.h>

#include "algo/ptas/dp_sequential.hpp"
#include "algo/ptas/ptas.hpp"
#include "core/bounds.hpp"
#include "core/instance_gen.hpp"
#include "exact/brute_force.hpp"
#include "util/error.hpp"

namespace pcmax {
namespace {

DpBackendFn bottom_up_backend() {
  return [](const RoundedInstance& rounded, const StateSpace& space,
            const ConfigSet& configs) {
    return dp_bottom_up(rounded, space, configs);
  };
}

TEST(Multisection, OneWayDegeneratesToBisection) {
  for (std::uint64_t index = 0; index < 4; ++index) {
    const Instance instance =
        generate_instance(InstanceFamily::kUniform1To100, 3, 12, 9, index);
    const BisectionResult bisection =
        bisect_target_makespan(instance, 4, bottom_up_backend(), {});
    const MultisectionResult multi =
        multisect_target_makespan(instance, 4, bottom_up_backend(), {}, 1);
    EXPECT_EQ(multi.t_star, bisection.t_star) << "#" << index;
    EXPECT_EQ(multi.rounds.size(), bisection.trace.size());
  }
}

TEST(Multisection, WiderSpeculationUsesFewerRounds) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10N, 4, 20, 5, 0);
  const MultisectionResult narrow =
      multisect_target_makespan(instance, 4, bottom_up_backend(), {}, 1);
  const MultisectionResult wide =
      multisect_target_makespan(instance, 4, bottom_up_backend(), {}, 7);
  EXPECT_LT(wide.rounds.size(), narrow.rounds.size());
}

TEST(Multisection, TStarStaysWithinBoundsAndBelowOptimum) {
  for (const unsigned ways : {2u, 3u, 5u}) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      const Instance instance =
          generate_instance(InstanceFamily::kUniform1To100, 3, 10, 13, index);
      const MultisectionResult multi =
          multisect_target_makespan(instance, 4, bottom_up_backend(), {}, ways);
      EXPECT_GE(multi.t_star, makespan_lower_bound(instance));
      EXPECT_LE(multi.t_star, makespan_upper_bound(instance));
      EXPECT_LE(multi.t_star, brute_force_optimum(instance))
          << "ways=" << ways << " #" << index;
    }
  }
}

TEST(Multisection, FinalTargetIsFeasibleWhenReprobed) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 4, 18, 17, 0);
  const MultisectionResult multi =
      multisect_target_makespan(instance, 4, bottom_up_backend(), {}, 4);
  const DpAtTarget at =
      run_dp_at(instance, multi.t_star, 4, bottom_up_backend(), {});
  EXPECT_NE(at.run.machines_needed, DpTable::kInfeasible);
  EXPECT_LE(at.run.machines_needed, instance.machines());
}

TEST(Multisection, RejectsZeroWays) {
  const Instance instance(2, {3, 4});
  EXPECT_THROW((void)multisect_target_makespan(instance, 4, bottom_up_backend(),
                                               {}, 0),
               InvalidArgumentError);
}

TEST(Multisection, AsBisectionFlattensAllProbes) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 3, 12, 19, 0);
  const MultisectionResult multi =
      multisect_target_makespan(instance, 4, bottom_up_backend(), {}, 3);
  const BisectionResult flat = multi.as_bisection();
  std::size_t probes = 0;
  for (const MultisectionRound& round : multi.rounds) probes += round.probes.size();
  EXPECT_EQ(flat.trace.size(), probes);
  EXPECT_EQ(flat.t_star, multi.t_star);
}

TEST(SpeculativePtas, MatchesTheGuaranteeAndValidatesSchedules) {
  for (const unsigned speculation : {2u, 4u}) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      const Instance instance =
          generate_instance(InstanceFamily::kUniform1To100, 3, 12, 23, index);
      PtasOptions options;
      options.speculation = speculation;
      PtasSolver solver(options);
      const SolverResult result = solver.solve(instance);
      result.schedule.validate(instance);
      const Time opt = brute_force_optimum(instance);
      EXPECT_LE(static_cast<double>(result.makespan),
                1.3 * static_cast<double>(opt))
          << "speculation=" << speculation << " #" << index;
    }
  }
}

TEST(SpeculativePtas, UsuallyMatchesTheBisectionMakespan) {
  // Rounded feasibility is monotone on these instances, so bisection and
  // multisection settle on the same T* and schedule.
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To10, 4, 20, 29, 0);
  const SolverResult plain = PtasSolver(PtasOptions{}).solve(instance);
  PtasOptions options;
  options.speculation = 8;
  const SolverResult speculative = PtasSolver(options).solve(instance);
  EXPECT_EQ(speculative.makespan, plain.makespan);
}

TEST(SpeculativePtas, ComposesWithParallelDpEngines) {
  const Instance instance =
      generate_instance(InstanceFamily::kUniform1To100, 4, 16, 37, 0);
  ThreadPoolExecutor executor(2);
  PtasOptions options;
  options.speculation = 3;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  PtasSolver solver(options);
  const SolverResult result = solver.solve(instance);
  result.schedule.validate(instance);
  EXPECT_EQ(result.makespan, PtasSolver(PtasOptions{}).solve(instance).makespan);
}

}  // namespace
}  // namespace pcmax
