// Example: what-if execution — plan with estimates, execute with reality.
//
// Scenario: job durations are estimates; the operator wants to know how
// much a planned makespan can slip before committing to a deadline. The
// discrete-event simulator replays the planned schedule under processing-
// time noise and reports the realised-makespan distribution.
#include <iostream>

#include "pcmax.hpp"

using namespace pcmax;

int main() {
  const Instance plan =
      generate_instance(InstanceFamily::kUniform1To100, 6, 30, 2026, 0);

  // Plan with the parallel PTAS at eps = 0.3.
  ThreadPoolExecutor executor(ThreadPool::hardware_threads());
  PtasOptions options;
  options.engine = DpEngine::kParallelBucketed;
  options.executor = &executor;
  const SolverResult planned = PtasSolver(options).solve(plan);

  std::cout << "planned schedule (estimates):\n"
            << render_gantt(plan, planned.schedule) << "\n";

  // Execute once with +-20% noise and show the realised timeline.
  NoiseModel noise;
  noise.delta = 0.2;
  noise.seed = 7;
  const std::vector<Time> actual = perturb_times(plan, noise, /*trial=*/0);
  const SimResult realised = simulate_schedule(plan, planned.schedule, actual);
  std::cout << "one realised execution: planned " << planned.makespan
            << " -> realised " << realised.makespan << " (utilisation "
            << TablePrinter::fmt(100.0 * realised.mean_utilisation(), 1)
            << "%)\n\n";

  // Distribution across noise levels.
  TablePrinter table({"noise +-", "mean slip", "worst slip", "p. deadline ok"});
  for (const double delta : {0.05, 0.1, 0.2, 0.3}) {
    NoiseModel model;
    model.delta = delta;
    model.seed = 7;
    const RobustnessReport report =
        analyze_robustness(plan, planned.schedule, model, /*trials=*/200);
    // Probability the realised makespan stays within 110% of plan.
    const double deadline =
        1.10 * static_cast<double>(report.nominal_makespan);
    // Re-run the trials to count (cheap; the report only keeps summaries).
    int within = 0;
    for (int trial = 0; trial < 200; ++trial) {
      const auto times =
          perturb_times(plan, model, static_cast<std::uint64_t>(trial));
      if (static_cast<double>(
              simulate_schedule(plan, planned.schedule, times).makespan) <=
          deadline) {
        ++within;
      }
    }
    table.add_row({TablePrinter::fmt(100 * delta, 0) + "%",
                   TablePrinter::fmt(100 * (report.mean_inflation - 1.0), 1) + "%",
                   TablePrinter::fmt(100 * (report.worst_inflation - 1.0), 1) + "%",
                   TablePrinter::fmt(100.0 * within / 200.0, 1) + "%"});
  }
  std::cout << table.to_string()
            << "\n'deadline ok' = realised makespan within 110% of plan.\n";
  return 0;
}
