// Example: nightly batch queue on an HPC cluster.
//
// Scenario (the kind of workload the paper's introduction motivates): a
// cluster operator must place a nightly batch of CPU-bound jobs onto
// identical compute nodes so the whole batch finishes as early as possible —
// exactly P || C_max. The job mix is bimodal: many short analysis tasks plus
// a few long simulation runs, which is where greedy heuristics lose the most.
//
// The example compares LPT against the parallel PTAS at several accuracies
// and prints the certified optimality gap for each.
#include <iostream>

#include "pcmax.hpp"

using namespace pcmax;

namespace {

/// Builds a bimodal batch: `n_short` tasks of 5-30 minutes and `n_long`
/// simulations of 3-8 hours (all in minutes).
Instance make_batch(int nodes, int n_short, int n_long, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Time> minutes;
  minutes.reserve(static_cast<std::size_t>(n_short + n_long));
  for (int j = 0; j < n_short; ++j) minutes.push_back(uniform_int(rng, 5, 30));
  for (int j = 0; j < n_long; ++j) minutes.push_back(uniform_int(rng, 180, 480));
  return Instance(nodes, std::move(minutes));
}

}  // namespace

int main() {
  const int nodes = 12;
  const Instance batch = make_batch(nodes, /*n_short=*/80, /*n_long=*/10, 7);

  std::cout << "nightly batch: " << batch.jobs() << " jobs, " << nodes
            << " nodes, total work " << batch.total_time() << " node-minutes\n"
            << "lower bound on the finish time: " << makespan_lower_bound(batch)
            << " minutes\n\n";

  // Certified optimum as the yardstick (the batch is small enough).
  const SolverResult opt = ExactSolver().solve(batch);
  std::cout << "optimal finish time: " << opt.makespan << " minutes"
            << (opt.proven_optimal ? " (certified)" : " (best found)") << "\n\n";

  ThreadPoolExecutor executor(ThreadPool::hardware_threads());

  TablePrinter table({"scheduler", "finish (min)", "vs optimal", "solve time (s)"});
  auto report = [&](const std::string& name, const SolverResult& r) {
    table.add_row({name, std::to_string(r.makespan),
                   TablePrinter::fmt(static_cast<double>(r.makespan) /
                                         static_cast<double>(opt.makespan),
                                     4),
                   TablePrinter::fmt(r.seconds, 4)});
  };

  report("LS (queue order)", ListSchedulingSolver().solve(batch));
  report("LPT", LptSolver().solve(batch));
  report("MULTIFIT", MultifitSolver().solve(batch));

  for (const double epsilon : {0.5, 0.3, 0.2}) {
    PtasOptions options;
    options.epsilon = epsilon;
    options.engine = DpEngine::kParallelBucketed;
    options.executor = &executor;
    PtasSolver solver(options);
    report("ParallelPTAS eps=" + TablePrinter::fmt(epsilon, 1),
           solver.solve(batch));
  }

  std::cout << table.to_string()
            << "\nA tighter epsilon buys a better guarantee at more DP work;\n"
               "the parallel level-sweep keeps that affordable on a multicore\n"
               "head node (paper, Section III).\n";
  return 0;
}
