// Example: every solver in the library, side by side, across the paper's six
// instance families — a one-screen tour of the whole public API.
#include <iostream>

#include "pcmax.hpp"

using namespace pcmax;

int main() {
  const int machines = 8;
  const int jobs = 40;
  const std::uint64_t seed = 99;

  ThreadPoolExecutor executor(ThreadPool::hardware_threads());

  std::cout << "solver face-off: m=" << machines << ", n=" << jobs
            << ", one instance per family (seed " << seed << ")\n\n";

  for (const InstanceFamily family : all_families()) {
    const Instance instance = generate_instance(family, machines, jobs, seed, 0);

    // The certified reference.
    ExactSolverOptions exact_options;
    exact_options.max_total_seconds = 20.0;
    const SolverResult opt = ExactSolver(exact_options).solve(instance);

    ListSchedulingSolver ls;
    LptSolver lpt;
    MultifitSolver multifit;
    PtasSolver ptas{PtasOptions{}};
    PtasOptions par_options;
    par_options.engine = DpEngine::kParallelBucketed;
    par_options.executor = &executor;
    PtasSolver parallel_ptas(par_options);
    MipOptions milp_options;
    milp_options.max_seconds = 10.0;
    PcmaxIpSolver milp(milp_options);

    TablePrinter table({"solver", "makespan", "ratio", "seconds", "certified"});
    auto report = [&](Solver& solver) {
      const SolverResult r = solver.solve(instance);
      r.schedule.validate(instance);
      table.add_row({solver.name(), std::to_string(r.makespan),
                     TablePrinter::fmt(static_cast<double>(r.makespan) /
                                           static_cast<double>(opt.makespan),
                                       4),
                     TablePrinter::fmt(r.seconds, 4),
                     r.proven_optimal ? "yes" : "-"});
    };
    report(ls);
    report(lpt);
    report(multifit);
    report(ptas);
    report(parallel_ptas);
    report(milp);
    table.add_row({"IP (reference)", std::to_string(opt.makespan), "1.0000",
                   TablePrinter::fmt(opt.seconds, 4),
                   opt.proven_optimal ? "yes" : "-"});

    std::cout << family_name(family) << ":\n" << table.to_string() << "\n";
  }
  return 0;
}
