// Example: render-farm shot scheduling with an accuracy/time dial.
//
// Scenario: a render farm distributes frame-render jobs of very different
// lengths over identical render nodes before a delivery deadline. The studio
// cares about the *guarantee*: with the PTAS, the makespan is provably within
// (1+eps) of the best possible, and eps is a dial traded against solver time.
//
// This example sweeps epsilon, showing how k = ceil(1/eps) drives the DP
// table size (the paper's O((n/eps)^(1/eps^2)) growth) while the realised
// makespan improves monotonically in guarantee (not always in value).
#include <iostream>

#include "pcmax.hpp"

using namespace pcmax;

int main() {
  // 16 render nodes; frame batches drawn from a heavy-tailed mix: crowd and
  // fx shots render for hours, inserts for minutes.
  const int nodes = 16;
  Xoshiro256StarStar rng(2026);
  std::vector<Time> frames;
  for (int j = 0; j < 60; ++j) frames.push_back(uniform_int(rng, 4, 40));
  for (int j = 0; j < 12; ++j) frames.push_back(uniform_int(rng, 120, 300));
  const Instance shot(nodes, std::move(frames));

  std::cout << "render batch: " << shot.jobs() << " frames on " << nodes
            << " nodes; lower bound " << makespan_lower_bound(shot)
            << " minutes\n\n";

  ThreadPoolExecutor executor(ThreadPool::hardware_threads());

  TablePrinter table({"epsilon", "k", "guarantee", "makespan", "max DP table",
                      "bisection probes", "solve time (s)"});
  for (const double epsilon : {1.0, 0.5, 0.4, 0.3, 0.25, 0.2}) {
    PtasOptions options;
    options.epsilon = epsilon;
    options.engine = DpEngine::kParallelBucketed;
    options.executor = &executor;
    PtasSolver solver(options);
    const SolverResult r = solver.solve(shot);
    table.add_row({TablePrinter::fmt(epsilon, 2), std::to_string(solver.k()),
                   "<= " + TablePrinter::fmt(1.0 + epsilon, 2) + " x OPT",
                   std::to_string(r.makespan),
                   TablePrinter::fmt(r.stats.at("max_table_size"), 0),
                   TablePrinter::fmt(r.stats.at("iterations"), 0),
                   TablePrinter::fmt(r.seconds, 4)});
  }
  std::cout << table.to_string();

  std::cout << "\nNote how the DP table (and so the parallelisable work)\n"
               "explodes as epsilon shrinks - the exponential dependence on\n"
               "1/eps^2 is exactly why the paper parallelises the DP rather\n"
               "than searching for a faster sequential PTAS.\n";
  return 0;
}
