// Quickstart: schedule a handful of jobs with every solver in the library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "pcmax.hpp"

int main() {
  using namespace pcmax;

  // 4 machines, 12 jobs with hand-picked processing times.
  const Instance instance(4, {27, 19, 30, 11, 8, 21, 17, 5, 13, 9, 24, 16});

  std::cout << "instance: " << instance << "\n";
  std::cout << "bounds: LB=" << makespan_lower_bound(instance)
            << " UB=" << makespan_upper_bound(instance) << "\n\n";

  // --- The paper's parallel approximation algorithm -----------------------
  ThreadPoolExecutor executor(ThreadPool::hardware_threads());
  PtasOptions options;
  options.epsilon = 0.3;                         // (1+eps)-approximation
  options.engine = DpEngine::kParallelBucketed;  // Algorithm 3
  options.executor = &executor;
  PtasSolver parallel_ptas(options);

  SolverResult result = parallel_ptas.solve(instance);
  std::cout << "ParallelPTAS (eps=0.3) makespan = " << result.makespan << "\n";
  std::cout << result.schedule.to_string(instance) << "\n";
  std::cout << render_gantt(instance, result.schedule) << "\n";

  // End-to-end check on the discrete-event simulator: executing the
  // schedule really finishes at the reported makespan.
  const SimResult sim = simulate_schedule(instance, result.schedule);
  std::cout << "simulated finish: " << sim.makespan << " (utilisation "
            << TablePrinter::fmt(100.0 * sim.mean_utilisation(), 1) << "%)\n\n";

  // --- Compare all solvers ------------------------------------------------
  ListSchedulingSolver ls;
  LptSolver lpt;
  MultifitSolver multifit;
  PtasSolver sequential_ptas(PtasOptions{});  // sequential Algorithm 1+2
  ExactSolver exact;                          // certified optimum

  TablePrinter table({"solver", "makespan", "optimal?"});
  for (Solver* solver : std::initializer_list<Solver*>{
           &ls, &lpt, &multifit, &sequential_ptas, &parallel_ptas, &exact}) {
    const SolverResult r = solver->solve(instance);
    table.add_row({solver->name(), std::to_string(r.makespan),
                   r.proven_optimal ? "yes" : "-"});
  }
  std::cout << table.to_string();
  return 0;
}
